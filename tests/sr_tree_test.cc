#include "src/core/sr_tree.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/sstree/ss_tree.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(SRTreeTest, PaperFanouts) {
  SRTree::Options options;
  options.dim = 16;
  SRTree tree(options);
  // Table 1: the SR-tree node holds 20 entries and the leaf 12 at D=16 —
  // one third of the SS-tree fanout, two thirds of the R*-tree's
  // (Section 5.3).
  EXPECT_EQ(tree.node_capacity(), 20u);  // (8192-8)/(16*8+8+2*16*8+4+4)
  EXPECT_EQ(tree.leaf_capacity(), 12u);
  EXPECT_EQ(tree.name(), "SR-tree");
}

std::unique_ptr<SRTree> BuildUniformSRTree(const Dataset& data,
                                           SRTree::Options options) {
  options.dim = data.dim();
  auto tree = std::make_unique<SRTree>(options);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(tree->Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  return tree;
}

TEST(SRTreeTest, LeafRegionsReportBothShapes) {
  SRTree::Options options;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  const Dataset data = MakeUniformDataset(800, 8, /*seed=*/19);
  const auto tree = BuildUniformSRTree(data, options);
  const RegionSummary summary = tree->LeafRegionSummary();
  EXPECT_TRUE(summary.has_spheres);
  EXPECT_TRUE(summary.has_rects);
  EXPECT_GT(summary.leaf_count, 10u);
  // The intersection region is no larger than either shape; in particular
  // the rectangle volume must undercut the sphere volume in 8 dimensions.
  EXPECT_LT(summary.avg_rect_volume, summary.avg_sphere_volume);
}

TEST(SRTreeTest, RadiusRuleTightensSpheresVsSsTree) {
  // Section 4.2: radius = min(d_s, d_r) can only shrink the spheres
  // relative to the SS-tree's d_s on identical data and identical
  // insertion order... the trees diverge structurally, so compare the
  // ablation within the SR-tree itself (identical structure decisions flow
  // from identical centroids; the radius rule only affects the stored
  // radii and search).
  const Dataset data = MakeUniformDataset(1000, 8, /*seed=*/23);

  SRTree::Options with_rule;
  with_rule.page_size = 2048;
  with_rule.leaf_data_size = 0;
  auto tree_with = BuildUniformSRTree(data, with_rule);

  SRTree::Options without_rule = with_rule;
  without_rule.use_rect_in_radius = false;
  auto tree_without = BuildUniformSRTree(data, without_rule);

  const RegionSummary with_summary = tree_with->LeafRegionSummary();
  const RegionSummary without_summary = tree_without->LeafRegionSummary();
  EXPECT_LE(with_summary.avg_sphere_diameter,
            without_summary.avg_sphere_diameter + 1e-12);
}

TEST(SRTreeTest, RectInMindistReducesDiskReads) {
  // Section 4.4: pruning with max(sphere, rect) reads no more pages than
  // sphere-only pruning on the same tree.
  const Dataset data = MakeUniformDataset(1500, 8, /*seed=*/29);

  SRTree::Options options;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  auto full = BuildUniformSRTree(data, options);

  options.use_rect_in_mindist = false;
  auto sphere_only = BuildUniformSRTree(data, options);

  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 30, /*seed=*/31);
  IoStatsDelta full_io, sphere_io;
  for (const Point& q : queries) {
    const QueryResult a = full->Search(q, QuerySpec::Knn(10));
    const QueryResult b = sphere_only->Search(q, QuerySpec::Knn(10));
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].oid, b.neighbors[i].oid);
    }
    full_io.MergeFrom(a.io);
    sphere_io.MergeFrom(b.io);
  }
  EXPECT_LE(full_io.reads, sphere_io.reads);
}

TEST(SRTreeTest, InvariantsSurviveHeavyTraffic) {
  SRTree::Options options;
  options.dim = 8;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  SRTree tree(options);
  const Dataset data = MakeUniformDataset(1200, 8, /*seed=*/37);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  // Remove half, checking structural health along the way.
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const Status status = tree.CheckInvariants();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(tree.size(), data.size() / 2);
}

TEST(SRTreeTest, RejectsWrongDimensionality) {
  SRTree::Options options;
  options.dim = 3;
  SRTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{1.0, 2.0}, 0).IsInvalidArgument());
}

}  // namespace
}  // namespace srtree
