// Property tests run against every index structure, dimensionality, and
// data distribution: results must match brute force exactly, and the
// structural invariants must hold through arbitrary insert/delete traffic.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/brute_force.h"
#include "src/workload/queries.h"
#include "tests/test_util.h"

namespace srtree {
namespace {

using testing::DistKind;
using testing::DistKindName;
using testing::MakeSmallPageIndex;
using testing::MakeTestDataset;
using testing::SearchKnn;
using testing::SearchRange;
using testing::TypeToken;

struct PropertyParam {
  IndexType type;
  int dim;
  DistKind dist;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  return TypeToken(info.param.type) + "_d" + std::to_string(info.param.dim) +
         "_" + DistKindName(info.param.dist);
}

class TreePropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  bool IsDynamic() const {
    return GetParam().type != IndexType::kVamSplitRTree;
  }

  std::unique_ptr<PointIndex> BuildIndex(const Dataset& data) {
    auto index = MakeSmallPageIndex(GetParam().type, GetParam().dim);
    const Status status = index->BulkLoad(data.ToPoints(),
                                          data.SequentialOids());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return index;
  }

  // By pointer: the index embeds a mutex (thread-safe stats) and cannot move.
  std::unique_ptr<BruteForceIndex> BuildReference(const Dataset& data) {
    BruteForceIndex::Options options;
    options.dim = GetParam().dim;
    auto reference = std::make_unique<BruteForceIndex>(options);
    const Status status =
        reference->BulkLoad(data.ToPoints(), data.SequentialOids());
    EXPECT_TRUE(status.ok());
    return reference;
  }

  static void ExpectSameNeighbors(const std::vector<Neighbor>& actual,
                                  const std::vector<Neighbor>& expected) {
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].oid, expected[i].oid) << "rank " << i;
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance) << "rank "
                                                                 << i;
    }
  }
};

TEST_P(TreePropertyTest, InvariantsAfterBulkLoad) {
  const Dataset data = MakeTestDataset(GetParam().dist, 600, GetParam().dim,
                                       /*seed=*/7);
  auto index = BuildIndex(data);
  EXPECT_EQ(index->size(), data.size());
  const Status status = index->CheckInvariants();
  EXPECT_TRUE(status.ok()) << status.ToString();
  const TreeStats stats = index->GetTreeStats();
  EXPECT_EQ(stats.entry_count, data.size());
  EXPECT_GE(stats.height, 2) << "test datasets should force real trees";
}

TEST_P(TreePropertyTest, KnnMatchesBruteForce) {
  const Dataset data = MakeTestDataset(GetParam().dist, 600, GetParam().dim,
                                       /*seed=*/11);
  auto index = BuildIndex(data);
  const std::unique_ptr<BruteForceIndex> reference = BuildReference(data);

  std::vector<Point> queries =
      SampleQueriesFromDataset(data, 15, /*seed=*/13);
  for (Point& q : SampleUniformQueries(GetParam().dim, 10, /*seed=*/17)) {
    queries.push_back(std::move(q));
  }
  for (const Point& q : queries) {
    for (const int k : {1, 5, 21}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      ExpectSameNeighbors(SearchKnn(*index, q, k), SearchKnn(*reference, q, k));
    }
  }
}

TEST_P(TreePropertyTest, BestFirstMatchesDepthFirstAndReadsNoMore) {
  const Dataset data = MakeTestDataset(GetParam().dist, 600, GetParam().dim,
                                       /*seed=*/11);
  auto index = BuildIndex(data);
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 15, /*seed=*/13);

  uint64_t dfs_reads = 0;
  uint64_t bf_reads = 0;
  for (const Point& q : queries) {
    const QueryResult dfs = index->Search(q, QuerySpec::Knn(10));
    dfs_reads += dfs.io.reads;

    const QueryResult best_first =
        index->Search(q, QuerySpec::KnnBestFirst(10));
    bf_reads += best_first.io.reads;

    ExpectSameNeighbors(best_first.neighbors, dfs.neighbors);
  }
  // Best-first is I/O-optimal for a given MINDIST bound: over the workload
  // it cannot read more pages than the depth-first traversal.
  EXPECT_LE(bf_reads, dfs_reads);
}

TEST_P(TreePropertyTest, MaintenanceCountersTrackStructureChanges) {
  const Dataset data = MakeTestDataset(GetParam().dist, 600, GetParam().dim,
                                       /*seed=*/61);
  auto index = BuildIndex(data);
  const MaintenanceStats stats = index->GetMaintenanceStats();
  const TreeStats tree = index->GetTreeStats();
  if (GetParam().type == IndexType::kVamSplitRTree) {
    EXPECT_EQ(stats.splits, 0u);  // static bulk load never splits pages
    return;
  }
  // Insert-only growth allocates pages through splits (one new page each),
  // root growth (one per level), and — for the X-tree — supernode
  // extensions, so splits account for all pages beyond one per level.
  if (GetParam().type == IndexType::kXTree) {
    EXPECT_GT(stats.splits, 0u);
  } else {
    EXPECT_GE(stats.splits + stats.forced_splits,
              tree.leaf_count + tree.node_count -
                  static_cast<uint64_t>(tree.height));
  }
  if (GetParam().type == IndexType::kKdbTree) {
    EXPECT_EQ(stats.reinsertions, 0u);
  } else if (GetParam().type == IndexType::kXTree) {
    // The X-tree neither reinserts nor force-splits; overflow is handled
    // by splits and supernode extension.
    EXPECT_EQ(stats.reinsertions, 0u);
    EXPECT_EQ(stats.forced_splits, 0u);
  } else {
    EXPECT_GT(stats.reinsertions, 0u);  // forced reinsertion fired
    EXPECT_EQ(stats.forced_splits, 0u);
  }
}

TEST_P(TreePropertyTest, KnnWithKLargerThanDataset) {
  const Dataset data = MakeTestDataset(GetParam().dist, 50, GetParam().dim,
                                       /*seed=*/23);
  auto index = BuildIndex(data);
  const std::unique_ptr<BruteForceIndex> reference = BuildReference(data);
  const Point q(GetParam().dim, 0.5);
  ExpectSameNeighbors(SearchKnn(*index, q, 200),
                      SearchKnn(*reference, q, 200));
}

TEST_P(TreePropertyTest, RangeMatchesBruteForce) {
  const Dataset data = MakeTestDataset(GetParam().dist, 600, GetParam().dim,
                                       /*seed=*/29);
  auto index = BuildIndex(data);
  const std::unique_ptr<BruteForceIndex> reference = BuildReference(data);

  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 10, /*seed=*/31);
  for (const Point& q : queries) {
    // Radius reaching roughly the 20 nearest points.
    const std::vector<Neighbor> knn = SearchKnn(*reference, q, 20);
    const double radius = knn.back().distance;
    ExpectSameNeighbors(SearchRange(*index, q, radius),
                        SearchRange(*reference, q, radius));
  }
}

TEST_P(TreePropertyTest, EmptyAndSingleton) {
  auto index = MakeSmallPageIndex(GetParam().type, GetParam().dim);
  const Point q(GetParam().dim, 0.25);
  EXPECT_TRUE(SearchKnn(*index, q, 3).empty());
  EXPECT_TRUE(SearchRange(*index, q, 10.0).empty());
  EXPECT_TRUE(index->CheckInvariants().ok());

  const Status status = index->BulkLoad({Point(GetParam().dim, 0.5)}, {42});
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::vector<Neighbor> result = SearchKnn(*index, q, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 42u);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

TEST_P(TreePropertyTest, InsertDeleteTrafficKeepsInvariants) {
  if (!IsDynamic()) {
    GTEST_SKIP() << "static structure";
  }
  const Dataset data = MakeTestDataset(GetParam().dist, 500, GetParam().dim,
                                       /*seed=*/37);
  auto index = MakeSmallPageIndex(GetParam().type, GetParam().dim);
  const std::unique_ptr<BruteForceIndex> reference = BuildReference(Dataset(GetParam().dim));

  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data.point(i), static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(
        reference->Insert(data.point(i), static_cast<uint32_t>(i)).ok());
    // Interleave deletions: every third point is removed again.
    if (i % 3 == 2) {
      const size_t victim = i - 1;
      ASSERT_TRUE(
          index->Delete(data.point(victim), static_cast<uint32_t>(victim))
              .ok());
      ASSERT_TRUE(reference
                      ->Delete(data.point(victim),
                               static_cast<uint32_t>(victim))
                      .ok());
    }
    if (i % 100 == 99) {
      const Status status = index->CheckInvariants();
      ASSERT_TRUE(status.ok()) << status.ToString() << " at step " << i;
    }
  }
  EXPECT_EQ(index->size(), reference->size());

  const Status status = index->CheckInvariants();
  EXPECT_TRUE(status.ok()) << status.ToString();
  for (const Point& q :
       SampleQueriesFromDataset(data, 10, /*seed=*/41)) {
    ExpectSameNeighbors(SearchKnn(*index, q, 10),
                        SearchKnn(*reference, q, 10));
  }
}

TEST_P(TreePropertyTest, DeleteToEmptyAndReuse) {
  if (!IsDynamic()) {
    GTEST_SKIP() << "static structure";
  }
  const Dataset data = MakeTestDataset(GetParam().dist, 200, GetParam().dim,
                                       /*seed=*/43);
  auto index = MakeSmallPageIndex(GetParam().type, GetParam().dim);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index->Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(
        index->Delete(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(index->CheckInvariants().ok());
  EXPECT_TRUE(SearchKnn(*index, Point(GetParam().dim, 0.5), 3).empty());

  // The emptied index must accept new points.
  ASSERT_TRUE(index->Insert(data.point(0), 999).ok());
  const std::vector<Neighbor> result = SearchKnn(*index, data.point(0), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 999u);
}

TEST_P(TreePropertyTest, DeleteMissingPointIsNotFound) {
  if (!IsDynamic()) {
    GTEST_SKIP() << "static structure";
  }
  const Dataset data = MakeTestDataset(GetParam().dist, 100, GetParam().dim,
                                       /*seed=*/47);
  auto index = BuildIndex(data);
  // Absent oid on a present point.
  EXPECT_TRUE(index->Delete(data.point(0), 12345).IsNotFound());
  // Absent point.
  const Point outside(GetParam().dim, -3.5);
  EXPECT_TRUE(index->Delete(outside, 0).IsNotFound());
  EXPECT_EQ(index->size(), data.size());
}

TEST_P(TreePropertyTest, DuplicatePointsAreAllRetrievable) {
  auto index = MakeSmallPageIndex(GetParam().type, GetParam().dim);
  const Point p(GetParam().dim, 0.3);
  std::vector<Point> points(5, p);
  std::vector<uint32_t> oids = {10, 11, 12, 13, 14};
  // Give the bulk loader some distinct company as well.
  const Dataset extra = MakeTestDataset(GetParam().dist, 100, GetParam().dim,
                                        /*seed=*/53);
  for (size_t i = 0; i < extra.size(); ++i) {
    const PointView v = extra.point(i);
    points.emplace_back(v.begin(), v.end());
    oids.push_back(static_cast<uint32_t>(100 + i));
  }
  ASSERT_TRUE(index->BulkLoad(points, oids).ok());

  const std::vector<Neighbor> result = SearchKnn(*index, p, 5);
  ASSERT_EQ(result.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result[i].oid, 10 + i);
    EXPECT_EQ(result[i].distance, 0.0);
  }
}

std::vector<PropertyParam> AllPropertyParams() {
  std::vector<PropertyParam> params;
  for (const IndexType type :
       {IndexType::kSRTree, IndexType::kSSTree, IndexType::kRStarTree,
        IndexType::kKdbTree, IndexType::kVamSplitRTree, IndexType::kXTree,
        IndexType::kTvTree}) {
    for (const int dim : {2, 8, 16}) {
      for (const DistKind dist :
           {DistKind::kUniform, DistKind::kCluster, DistKind::kHistogram}) {
        params.push_back(PropertyParam{type, dim, dist});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllTreesDimsAndDistributions, TreePropertyTest,
                         ::testing::ValuesIn(AllPropertyParams()), ParamName);

}  // namespace
}  // namespace srtree
