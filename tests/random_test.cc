#include "src/common/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, UniformMeanAndBounds) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(2.0, 4.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Xoshiro256Test, NextBoundedCoversRange) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256Test, GammaMeanMatchesShape) {
  Xoshiro256 rng(13);
  for (const double shape : {0.4, 1.0, 3.5}) {
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = rng.Gamma(shape);
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / n, shape, 0.05 * shape + 0.01) << "shape " << shape;
  }
}

TEST(Xoshiro256Test, OnUnitSphereHasUnitNorm) {
  Xoshiro256 rng(17);
  for (const int dim : {1, 2, 3, 16, 64}) {
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> p = rng.OnUnitSphere(dim);
      ASSERT_EQ(p.size(), static_cast<size_t>(dim));
      double norm_sq = 0.0;
      for (const double c : p) norm_sq += c * c;
      EXPECT_NEAR(norm_sq, 1.0, 1e-9);
    }
  }
}

TEST(ZipfTableTest, RankZeroMostPopular) {
  Xoshiro256 rng(19);
  ZipfTable zipf(20, 1.2);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
  // Every rank appears in a large sample.
  for (int rank = 0; rank < 20; ++rank) EXPECT_GT(counts[rank], 0);
}

TEST(ZipfTableTest, SingleRank) {
  Xoshiro256 rng(21);
  ZipfTable zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0);
}

}  // namespace
}  // namespace srtree
