#include "src/storage/page.h"

#include <vector>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(PageTest, RoundTripScalars) {
  std::vector<char> buf(128);
  PageWriter w(buf.data(), buf.size());
  w.PutU8(7);
  w.PutU16(1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutDouble(3.25);
  const size_t written = w.offset();

  PageReader r(buf.data(), buf.size());
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_EQ(r.GetU16(), 1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.25);
  EXPECT_EQ(r.offset(), written);
}

TEST(PageTest, RoundTripDoubleSpans) {
  std::vector<char> buf(128);
  const std::vector<double> values = {1.0, -2.5, 1e-300, 1e300};
  PageWriter w(buf.data(), buf.size());
  w.PutDoubles(values);

  std::vector<double> out(values.size());
  PageReader r(buf.data(), buf.size());
  r.GetDoubles(out);
  EXPECT_EQ(out, values);
}

TEST(PageTest, SkipZeroesAndAdvances) {
  std::vector<char> buf(64, 'x');
  PageWriter w(buf.data(), buf.size());
  w.PutU8(1);
  w.Skip(10);
  w.PutU8(2);
  EXPECT_EQ(w.offset(), 12u);
  for (int i = 1; i <= 10; ++i) EXPECT_EQ(buf[i], 0);

  PageReader r(buf.data(), buf.size());
  EXPECT_EQ(r.GetU8(), 1);
  r.Skip(10);
  EXPECT_EQ(r.GetU8(), 2);
}

TEST(PageTest, RemainingTracksCapacity) {
  std::vector<char> buf(16);
  PageWriter w(buf.data(), buf.size());
  EXPECT_EQ(w.remaining(), 16u);
  w.PutU64(1);
  EXPECT_EQ(w.remaining(), 8u);
}

TEST(PageDeathTest, OverflowAborts) {
  std::vector<char> buf(8);
  PageWriter w(buf.data(), buf.size());
  w.PutU64(1);
  EXPECT_DEATH(w.PutU8(1), "CHECK failed");
}

}  // namespace
}  // namespace srtree
