#include "src/storage/epoch.h"

#include <memory>
#include <optional>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(EpochManagerTest, QuiescedReclaimFreesEverything) {
  EpochManager epochs;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> probe = obj;

  epochs.Retire(std::move(obj));
  EXPECT_EQ(epochs.retired_count(), 1u);
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);  // no readers: frees immediately
  EXPECT_TRUE(probe.expired());
  EXPECT_EQ(epochs.retired_count(), 0u);
}

// The ordering soundness hinges on: a reader that announced before Retire()
// ran might already hold a pointer to the retiree (it entered between the
// writer's unlink and the retire call), so reclamation must keep the object
// until that reader exits — its announce equals the retiree's tag, and only
// strictly-newer announces allow the free.
TEST(EpochManagerTest, RetireeHeldWhileReaderAnnouncedBetweenUnlinkAndRetire) {
  EpochManager epochs;
  // "Unlink": this local is now the only reference; nothing published
  // reaches the object anymore.
  auto obj = std::make_shared<int>(7);
  std::weak_ptr<int> probe = obj;

  {
    EpochGuard reader(epochs);       // announces the pre-retire epoch...
    epochs.Retire(std::move(obj));   // ...which equals the retiree's tag
    epochs.AdvanceAndReclaim();
    EXPECT_FALSE(probe.expired());   // conservatively held, not freed
    EXPECT_EQ(epochs.retired_count(), 1u);
    EXPECT_EQ(epochs.active_readers(), 1u);
  }
  // The reader is gone; the hold must not outlive it.
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_TRUE(probe.expired());
  EXPECT_EQ(epochs.retired_count(), 0u);
}

// The flip side: a reader that announces after the epoch advanced past the
// retiree's tag can never have acquired a pointer to it (unlink-before-
// retire), so it must not pin the backlog — otherwise a steady reader
// stream would hold memory forever.
TEST(EpochManagerTest, LateReaderDoesNotPinEarlierRetiree) {
  EpochManager epochs;
  auto obj = std::make_shared<int>(9);
  std::weak_ptr<int> probe = obj;

  std::optional<EpochGuard> early;
  early.emplace(epochs);           // pins the retire-time epoch
  epochs.Retire(std::move(obj));
  epochs.AdvanceAndReclaim();      // held: early's announce == the tag
  ASSERT_FALSE(probe.expired());

  EpochGuard late(epochs);         // announces the post-advance epoch
  early.reset();
  // Only `late` is active now, and its announce is strictly newer than the
  // retiree's tag: the free proceeds despite the active reader.
  EXPECT_EQ(epochs.active_readers(), 1u);
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_TRUE(probe.expired());
  EXPECT_EQ(epochs.retired_count(), 0u);
}

// Hung-reader detection needs BOTH a stale announce (>= kStuckEpochGap
// behind the global epoch) and a real backlog (>= kStuckBacklog retirees
// waiting); either alone is normal operation and must stay silent. The
// counter ticks on every detection — only the stderr line is rate-limited.
TEST(EpochManagerTest, HungReaderWarningFiresOnlyPastBothThresholds) {
  EpochManager epochs;
  EpochGuard reader(epochs);  // pins min_active at the initial epoch

  for (size_t i = 0; i + 1 < EpochManager::kStuckBacklog; ++i) {
    epochs.Retire(std::make_shared<int>(0));
  }
  // Gap far past its threshold, backlog one short of its own: silent.
  for (uint64_t i = 0; i < EpochManager::kStuckEpochGap + 16; ++i) {
    epochs.AdvanceAndReclaim();
  }
  EXPECT_EQ(epochs.hung_reader_warning_count(), 0u);
  EXPECT_EQ(epochs.retired_count(), EpochManager::kStuckBacklog - 1);

  // Cross the backlog threshold too: every reclaim now detects.
  epochs.Retire(std::make_shared<int>(0));
  epochs.AdvanceAndReclaim();
  EXPECT_EQ(epochs.hung_reader_warning_count(), 1u);
  epochs.AdvanceAndReclaim();
  EXPECT_EQ(epochs.hung_reader_warning_count(), 2u);
}

}  // namespace
}  // namespace srtree
