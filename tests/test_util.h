// Shared helpers for the srtree test suite.

#ifndef SRTREE_TESTS_TEST_UTIL_H_
#define SRTREE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/benchlib/experiment.h"
#include "src/index/point_index.h"
#include "src/workload/cluster.h"
#include "src/workload/dataset.h"
#include "src/workload/histogram.h"
#include "src/workload/uniform.h"

namespace srtree::testing {

enum class DistKind { kUniform, kCluster, kHistogram };

inline const char* DistKindName(DistKind kind) {
  switch (kind) {
    case DistKind::kUniform:
      return "Uniform";
    case DistKind::kCluster:
      return "Cluster";
    case DistKind::kHistogram:
      return "Histogram";
  }
  return "Unknown";
}

inline Dataset MakeTestDataset(DistKind kind, size_t n, int dim,
                               uint64_t seed) {
  switch (kind) {
    case DistKind::kUniform:
      return MakeUniformDataset(n, dim, seed);
    case DistKind::kCluster: {
      ClusterConfig config;
      config.num_clusters = 8;
      config.points_per_cluster = (n + 7) / 8;
      config.dim = dim;
      config.seed = seed;
      Dataset data = MakeClusterDataset(config);
      // Trim to exactly n points.
      Dataset trimmed(dim);
      for (size_t i = 0; i < n; ++i) trimmed.Append(data.point(i));
      return trimmed;
    }
    case DistKind::kHistogram: {
      HistogramConfig config;
      config.n = n;
      config.dim = dim;
      config.seed = seed;
      return MakeHistogramDataset(config);
    }
  }
  return Dataset(dim);
}

// A small page size so modest datasets still produce multi-level trees with
// splits, reinsertion, and condensation. 2048 bytes keeps every tree's node
// capacity >= 2 for dim <= 16.
inline IndexConfig SmallPageConfig(int dim) {
  IndexConfig config;
  config.dim = dim;
  config.page_size = 2048;
  config.leaf_data_size = 0;
  return config;
}

inline std::unique_ptr<PointIndex> MakeSmallPageIndex(IndexType type,
                                                      int dim) {
  return MakeIndex(type, SmallPageConfig(dim));
}

// Search()-based shorthands for assertions that only care about the
// neighbor list. Unlike the deprecated wrapper methods (srlint rule R1),
// these go through the unified entry point, so tests exercise the same path
// production callers use; grab the full QueryResult directly when a test
// also wants the status or the per-query I/O delta.
inline std::vector<Neighbor> SearchKnn(const PointIndex& index,
                                       PointView query, int k) {
  return index.Search(query, QuerySpec::Knn(k)).neighbors;
}

inline std::vector<Neighbor> SearchKnnBestFirst(const PointIndex& index,
                                                PointView query, int k) {
  return index.Search(query, QuerySpec::KnnBestFirst(k)).neighbors;
}

inline std::vector<Neighbor> SearchRange(const PointIndex& index,
                                         PointView query, double radius) {
  return index.Search(query, QuerySpec::Range(radius)).neighbors;
}

inline std::string TypeToken(IndexType type) {
  switch (type) {
    case IndexType::kSRTree:
      return "SRTree";
    case IndexType::kSSTree:
      return "SSTree";
    case IndexType::kRStarTree:
      return "RStarTree";
    case IndexType::kKdbTree:
      return "KdbTree";
    case IndexType::kVamSplitRTree:
      return "VamSplitRTree";
    case IndexType::kXTree:
      return "XTree";
    case IndexType::kTvTree:
      return "TvTree";
    case IndexType::kScan:
      return "Scan";
    case IndexType::kStaticSRTree:
      return "StaticSRTree";
    case IndexType::kTieredSRTree:
      return "TieredSRTree";
  }
  return "Unknown";
}

}  // namespace srtree::testing

#endif  // SRTREE_TESTS_TEST_UTIL_H_
