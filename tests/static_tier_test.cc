// StaticSRTree: the immutable read-optimized tier. These tests cover the
// full round trip (BulkLoad → Save → factory OpenIndex → auditor-clean,
// query-exact), oracle exactness of all three query kinds against brute
// force (plain and buffer-pooled), the tombstone filter on the snapshot
// search entry points, and the immutability contract.

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/debug/fuzzer.h"
#include "src/debug/structural_auditor.h"
#include "src/index/brute_force.h"
#include "src/index/index_factory.h"
#include "src/statictier/static_sr_tree.h"
#include "src/storage/epoch.h"
#include "src/storage/image_io.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

StaticSRTree::Options SmallOptions(int dim) {
  StaticSRTree::Options options;
  options.dim = dim;
  options.page_size = 1024;
  return options;
}

// Loads the same dataset into the tree and a brute-force oracle.
void LoadBoth(StaticSRTree& tree, BruteForceIndex& oracle,
              const Dataset& data) {
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  for (size_t i = 0; i < data.size(); ++i) {
    points.emplace_back(data.point(i).begin(), data.point(i).end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(tree.BulkLoad(points, oids).ok());
  ASSERT_TRUE(oracle.BulkLoad(points, oids).ok());
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].oid, want[i].oid) << "rank " << i;
    // Same kernel, same doubles; the epsilon only covers benign
    // summation-order differences (matches the fuzzer's convention).
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9) << "rank " << i;
  }
}

TEST(StaticSRTreeTest, AllQueryKindsMatchBruteForce) {
  constexpr int kDim = 6;
  StaticSRTree tree(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const Dataset data = MakeUniformDataset(3000, kDim, /*seed=*/11);
  LoadBoth(tree, oracle, data);
  EXPECT_EQ(tree.size(), data.size());
  EXPECT_TRUE(tree.CheckInvariants().ok());

  for (const Point& q : SampleQueriesFromDataset(data, 25, /*seed=*/13)) {
    ExpectSameNeighbors(tree.Search(q, QuerySpec::Knn(10)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    ExpectSameNeighbors(tree.Search(q, QuerySpec::KnnBestFirst(10)).neighbors,
                        oracle.Search(q, QuerySpec::KnnBestFirst(10)).neighbors);
    const double radius =
        oracle.Search(q, QuerySpec::Knn(8)).neighbors.back().distance;
    ExpectSameNeighbors(tree.Search(q, QuerySpec::Range(radius)).neighbors,
                        oracle.Search(q, QuerySpec::Range(radius)).neighbors);
  }
}

TEST(StaticSRTreeTest, BufferPooledQueriesMatchUnpooled) {
  constexpr int kDim = 4;
  StaticSRTree tree(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const Dataset data = MakeUniformDataset(2000, kDim, /*seed=*/17);
  LoadBoth(tree, oracle, data);

  tree.UseBufferPool(32);
  for (const Point& q : SampleQueriesFromDataset(data, 15, /*seed=*/19)) {
    ExpectSameNeighbors(tree.Search(q, QuerySpec::Knn(12)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(12)).neighbors);
  }
  tree.UseBufferPool(0);
}

TEST(StaticSRTreeTest, SaveOpenRoundTripThroughFactory) {
  constexpr int kDim = 8;
  StaticSRTree tree(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const Dataset data = MakeUniformDataset(2500, kDim, /*seed=*/23);
  LoadBoth(tree, oracle, data);

  const std::string path = TempPath("static_tier.idx");
  ASSERT_TRUE(tree.Save(path).ok());
  StatusOr<std::string> tag = PeekIndexImageTag(path);
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();
  EXPECT_EQ(*tag, StaticSRTree::kImageTag);

  auto reopened = OpenIndex(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), tree.size());
  EXPECT_EQ((*reopened)->dim(), kDim);
  EXPECT_TRUE((*reopened)->CheckInvariants().ok());
  EXPECT_TRUE(debug::StructuralAuditor().Audit(**reopened).empty());

  for (const Point& q : SampleQueriesFromDataset(data, 20, /*seed=*/29)) {
    ExpectSameNeighbors((*reopened)->Search(q, QuerySpec::Knn(10)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    ExpectSameNeighbors(
        (*reopened)->Search(q, QuerySpec::KnnBestFirst(10)).neighbors,
        oracle.Search(q, QuerySpec::KnnBestFirst(10)).neighbors);
    const double radius =
        oracle.Search(q, QuerySpec::Knn(6)).neighbors.back().distance;
    ExpectSameNeighbors((*reopened)->Search(q, QuerySpec::Range(radius)).neighbors,
                        oracle.Search(q, QuerySpec::Range(radius)).neighbors);
  }
}

TEST(StaticSRTreeTest, EmptyTreeRoundTripsAndAnswersEmpty) {
  StaticSRTree tree(SmallOptions(3));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const Point q{0.5, 0.5, 0.5};
  EXPECT_TRUE(tree.Search(q, QuerySpec::Knn(5)).neighbors.empty());
  EXPECT_TRUE(tree.Search(q, QuerySpec::Range(10.0)).neighbors.empty());

  const std::string path = TempPath("static_tier_empty.idx");
  ASSERT_TRUE(tree.Save(path).ok());
  auto reopened = StaticSRTree::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 0u);
  EXPECT_TRUE((*reopened)->Search(q, QuerySpec::Knn(5)).neighbors.empty());
}

TEST(StaticSRTreeTest, MutationsAreUnimplemented) {
  StaticSRTree tree(SmallOptions(2));
  EXPECT_TRUE(tree.Insert(Point{0.1, 0.2}, 1).IsUnimplemented());
  EXPECT_TRUE(tree.Delete(Point{0.1, 0.2}, 1).IsUnimplemented());
}

TEST(StaticSRTreeTest, ContainsProbesStoredPairsExactly) {
  constexpr int kDim = 4;
  StaticSRTree tree(SmallOptions(kDim));
  const Dataset data = MakeUniformDataset(600, kDim, /*seed=*/31);
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  for (size_t i = 0; i < data.size(); ++i) {
    points.emplace_back(data.point(i).begin(), data.point(i).end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(tree.BulkLoad(points, oids).ok());

  EXPECT_TRUE(tree.Contains(points[0], 0));
  EXPECT_TRUE(tree.Contains(points[599], 599));
  // Same point, wrong oid → absent; nearby point → absent.
  EXPECT_FALSE(tree.Contains(points[0], 599));
  Point shifted = points[0];
  shifted[0] += 1e-3;
  EXPECT_FALSE(tree.Contains(shifted, 0));
}

TEST(StaticSRTreeTest, TombstoneFilterMasksPointsInSnapshotSearches) {
  constexpr int kDim = 3;
  StaticSRTree tree(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const Dataset data = MakeUniformDataset(800, kDim, /*seed=*/37);
  LoadBoth(tree, oracle, data);

  // Tombstone every fourth point; the oracle deletes them for real.
  TombstoneSet tombstones;
  for (size_t i = 0; i < data.size(); i += 4) {
    tombstones.emplace(Point(data.point(i).begin(), data.point(i).end()),
                       static_cast<uint32_t>(i));
    ASSERT_TRUE(oracle.Delete(data.point(i), static_cast<uint32_t>(i)).ok());
  }

  const EpochGuard guard(tree.epoch_domain());
  const PageFile::Snapshot snap = tree.AcquirePageSnapshot(guard);
  for (const Point& q : SampleQueriesFromDataset(data, 15, /*seed=*/41)) {
    ExpectSameNeighbors(tree.KnnDfsSnapshot(snap, q, 10, nullptr, &tombstones),
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    ExpectSameNeighbors(
        tree.KnnBestFirstSnapshot(snap, q, 10, nullptr, &tombstones),
        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    const double radius =
        oracle.Search(q, QuerySpec::Knn(5)).neighbors.back().distance;
    ExpectSameNeighbors(
        tree.RangeSnapshot(snap, q, radius, nullptr, &tombstones),
        oracle.Search(q, QuerySpec::Range(radius)).neighbors);
  }
}

// Query-only fuzz through the factory: bulk load, then seeded batches of
// all three query kinds cross-checked against the oracle with the
// structural auditor after every batch.
TEST(StaticSRTreeTest, QueryOnlyFuzzStaysOracleExactAndAudited) {
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  std::unique_ptr<PointIndex> index =
      MakeIndex(IndexType::kStaticSRTree, config);

  debug::FuzzOptions options;
  options.seed = 515;
  options.num_mutations = 0;
  options.initial_points = 3000;
  options.query_only_batches = 10;
  options.knn_queries_per_batch = 25;
  options.range_queries_per_batch = 25;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(index);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fuzzer.stats().knn_queries, 250u);
}

// The concurrent read-path fuzz (plus the pooled variant) over the static
// tier: many reader threads, oracle-exact results, io-accounting parity.
TEST(StaticSRTreeTest, ConcurrentQueryFuzz) {
  StaticSRTree tree(SmallOptions(5));
  debug::ConcurrentFuzzOptions options;
  options.seed = 616;
  options.num_points = 1500;
  options.num_threads = 4;
  const Status status = debug::RunConcurrentQueryFuzz(tree, options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(StaticSRTreeTest, ConcurrentQueryFuzzBufferPooled) {
  StaticSRTree tree(SmallOptions(5));
  debug::ConcurrentFuzzOptions options;
  options.seed = 717;
  options.num_points = 1200;
  options.num_threads = 4;
  options.buffer_pool_pages = 48;
  const Status status = debug::RunConcurrentQueryFuzz(tree, options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace srtree
