// Durability-path fault injection: every saveable index survives hundreds
// of injected faults (short writes, failed flush/rename, truncation, torn
// overwrites, bit flips), and an exhaustive every-byte corruption corpus on
// a small SR-tree image never crashes or silently loads wrong data.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/debug/fault_injection.h"
#include "src/index/index_factory.h"
#include "src/storage/image_io.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::vector<IndexType> SaveableTypes() {
  std::vector<IndexType> types = AllTreeTypes();
  types.push_back(IndexType::kXTree);
  types.push_back(IndexType::kTvTree);
  return types;
}

// ≥500 injected faults per index type (acceptance floor for this harness).
TEST(PersistenceFaultFuzzTest, EveryIndexTypeSurvivesInjectedFaults) {
  for (const IndexType type : SaveableTypes()) {
    SCOPED_TRACE(IndexTypeName(type));
    debug::PersistenceFaultFuzzOptions options;
    options.seed = 20260806;
    options.num_faults = 600;
    options.scratch_dir = ::testing::TempDir();
    const Status status = debug::RunPersistenceFaultFuzz(type, options);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// Exhaustive corruption corpus: for EVERY byte of a small SR-tree image,
// inverting that byte must make Load fail cleanly or still yield an
// auditor-clean index answering k-NN like the brute-force oracle.
TEST(PersistenceFaultFuzzTest, EveryByteCorruptionHandledCleanly) {
  const int dim = 2;
  const Dataset data = MakeUniformDataset(60, dim, /*seed=*/97);
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  for (size_t i = 0; i < data.size(); ++i) {
    const PointView view = data.point(i);
    points.emplace_back(view.begin(), view.end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  IndexConfig config;
  config.dim = dim;
  config.page_size = 512;
  config.leaf_data_size = 0;
  std::unique_ptr<PointIndex> index = MakeIndex(IndexType::kSRTree, config);
  ASSERT_TRUE(index->BulkLoad(points, oids).ok());
  std::unique_ptr<PointIndex> oracle = MakeIndex(IndexType::kScan, config);
  ASSERT_TRUE(oracle->BulkLoad(points, oids).ok());

  const std::string path = ::testing::TempDir() + "/byte_corpus.idx";
  ASSERT_TRUE(index->Save(path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());

  const std::vector<Point> queries = {Point{0.5, 0.5}, Point{0.1, 0.9}};
  size_t loads_ok = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupted = image;
    corrupted[i] = static_cast<char>(~corrupted[i]);
    ASSERT_TRUE(WriteStringToFileForTest(corrupted, path).ok());
    StatusOr<std::unique_ptr<PointIndex>> loaded = OpenIndex(path);
    if (!loaded.ok()) {
      EXPECT_TRUE(loaded.status().IsCorruption() ||
                  loaded.status().IsInvalidArgument())
          << "byte " << i << ": " << loaded.status().ToString();
      continue;
    }
    // Loadable despite the corruption: it must be indistinguishable from
    // the intact index.
    ++loads_ok;
    ASSERT_TRUE((*loaded)->CheckInvariants().ok()) << "byte " << i;
    for (const Point& q : queries) {
      const auto got = (*loaded)->Search(q, QuerySpec::Knn(5)).neighbors;
      const auto want = oracle->Search(q, QuerySpec::Knn(5)).neighbors;
      ASSERT_EQ(got.size(), want.size()) << "byte " << i;
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].oid, want[j].oid) << "byte " << i;
      }
    }
  }
  // Every byte of the v2 image is covered by a checksum, so silent
  // acceptance should be rare to impossible; the bound guards against a
  // future format change quietly widening the unprotected surface.
  EXPECT_EQ(loads_ok, 0u)
      << loads_ok << " corrupted images loaded successfully";
}

}  // namespace
}  // namespace srtree
