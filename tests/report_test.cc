#include "src/benchlib/report.h"

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(TableTest, RendersAlignedCells) {
  Table table("Demo", {"index", "reads"});
  table.AddRow({"SR-tree", "12.5"});
  table.AddRow({"SS-tree", "18.25"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("SR-tree"), std::string::npos);
  EXPECT_NE(out.find("18.25"), std::string::npos);
  EXPECT_NE(out.find("| index"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table("Demo", {"a", "b"});
  table.AddRow({"1", "2"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("csv: a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("csv: 1,2\n"), std::string::npos);
}

TEST(FormatNumTest, Ranges) {
  EXPECT_EQ(FormatNum(0.0), "0");
  EXPECT_EQ(FormatNum(3.14159), "3.1416");
  EXPECT_EQ(FormatNum(123.456), "123.5");
  EXPECT_EQ(FormatNum(1.5e-7), "1.500e-07");
  EXPECT_EQ(FormatNum(2.5e9), "2.500e+09");
  EXPECT_EQ(FormatNum(-42.0), "-42.0000");
}

}  // namespace
}  // namespace srtree
