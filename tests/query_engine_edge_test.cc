// QueryEngine edge cases: degenerate batch shapes and lifecycle corners
// that the main query_engine_test's steady-state batches never hit. Every
// batch result is compared against a sequential Search() loop over the same
// queries — the engine's determinism contract says they must be identical.

#include "src/engine/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/index/index_factory.h"
#include "src/index/point_index.h"
#include "src/index/query.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

constexpr int kDim = 4;

std::unique_ptr<PointIndex> BuildSmallIndex(size_t n) {
  IndexConfig config;
  config.dim = kDim;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(IndexType::kSRTree, config);
  const Dataset data = MakeUniformDataset(n, kDim, /*seed=*/211);
  const Status status = index->BulkLoad(data.ToPoints(), data.SequentialOids());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return index;
}

// The sequential oracle: the same queries, one at a time, on the same index.
std::vector<QueryResult> RunSequential(const PointIndex& index,
                                       const std::vector<Query>& queries) {
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& q : queries) {
    results.push_back(index.Search(q.point, q.spec));
  }
  return results;
}

void ExpectSameAnswers(const std::vector<QueryResult>& got,
                       const std::vector<QueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status.code(), want[i].status.code()) << "query " << i;
    EXPECT_EQ(got[i].neighbors, want[i].neighbors) << "query " << i;
  }
}

TEST(QueryEngineEdgeTest, EmptyBatchCompletesAndCountsZero) {
  EngineOptions options;
  options.num_workers = 4;
  QueryEngine engine(BuildSmallIndex(200), options);

  const std::vector<QueryResult> results = engine.RunBatch({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.last_batch_stats().queries, 0u);
  EXPECT_EQ(engine.last_batch_stats().chunks, 0u);

  // The pool must stay healthy: an empty batch followed by a real one.
  const std::vector<Query> queries = {
      {Point(kDim, 0.5), QuerySpec::Knn(3)},
  };
  ExpectSameAnswers(engine.RunBatch(queries),
                    RunSequential(engine.index(), queries));
}

TEST(QueryEngineEdgeTest, MoreWorkersThanQueries) {
  EngineOptions options;
  options.num_workers = 8;
  options.steal_grain = 1;  // every query is its own chunk
  QueryEngine engine(BuildSmallIndex(200), options);

  std::vector<Query> queries;
  for (const Point& q : SampleUniformQueries(kDim, 3, /*seed=*/223)) {
    queries.push_back({q, QuerySpec::Knn(5)});
  }
  ASSERT_LT(queries.size(), 8u);

  const std::vector<QueryResult> results = engine.RunBatch(queries);
  ExpectSameAnswers(results, RunSequential(engine.index(), queries));
  EXPECT_EQ(engine.last_batch_stats().queries, queries.size());
}

TEST(QueryEngineEdgeTest, KLargerThanDataset) {
  constexpr size_t kPoints = 40;
  EngineOptions options;
  options.num_workers = 4;
  QueryEngine engine(BuildSmallIndex(kPoints), options);

  std::vector<Query> queries;
  for (const Point& q : SampleUniformQueries(kDim, 6, /*seed=*/227)) {
    queries.push_back({q, QuerySpec::Knn(10 * kPoints)});
  }
  const std::vector<QueryResult> results = engine.RunBatch(queries);
  ExpectSameAnswers(results, RunSequential(engine.index(), queries));
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.neighbors.size(), kPoints);  // the whole dataset, ranked
  }
}

TEST(QueryEngineEdgeTest, DestructionWithIdlePool) {
  // Workers park on the work CV immediately; the destructor must wake and
  // join them without a batch ever having run.
  for (const int workers : {1, 2, 8}) {
    EngineOptions options;
    options.num_workers = workers;
    QueryEngine engine(BuildSmallIndex(50), options);
    EXPECT_EQ(engine.num_workers(), workers);
  }
}

TEST(QueryEngineEdgeTest, BackToBackBatchesNeverCrossEpochs) {
  // Regression test for a cross-epoch use-after-free: a worker that drains
  // the last chunk of batch N used to loop straight back into PopLocal/
  // StealFrom, and if the caller had already dispatched batch N+1 it could
  // execute an N+1 chunk against the stale results pointer snapshotted for
  // N — a write through a destroyed vector. Chunks are now epoch-tagged and
  // a worker refuses chunks from an epoch it did not snapshot. Tiny batches
  // with single-query chunks maximize the dispatch-while-draining window; a
  // regression can surface under TSan as a data race / heap-use-after-free,
  // or in any build as a wrong or missing result.
  EngineOptions options;
  options.num_workers = 8;
  options.steal_grain = 1;
  QueryEngine engine(BuildSmallIndex(200), options);

  std::vector<Query> queries;
  for (const Point& q : SampleUniformQueries(kDim, 5, /*seed=*/229)) {
    queries.push_back({q, QuerySpec::Knn(4)});
  }
  const std::vector<QueryResult> want = RunSequential(engine.index(), queries);
  for (int round = 0; round < 500; ++round) {
    ExpectSameAnswers(engine.RunBatch(queries), want);
  }
}

TEST(QueryEngineEdgeTest, ReleaseIndexAfterEmptyBatch) {
  EngineOptions options;
  options.num_workers = 2;
  QueryEngine engine(BuildSmallIndex(100), options);
  (void)engine.RunBatch({});
  std::unique_ptr<PointIndex> index = engine.ReleaseIndex();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 100u);
}

}  // namespace
}  // namespace srtree
