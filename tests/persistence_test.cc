#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/core/sr_tree.h"
#include "src/storage/page_file.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PageFilePersistenceTest, RoundTrip) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  file.Free(b);
  std::vector<char> data(64, 'q');
  file.Write(a, data.data());
  std::vector<char> data2(64, 'z');
  file.Write(c, data2.data());

  const std::string path = TempPath("pagefile.img");
  ASSERT_TRUE(file.Save(path).ok());

  PageFile restored(64);
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.live_pages(), 2u);
  std::vector<char> out(64);
  restored.Read(a, out.data());
  EXPECT_EQ(out[0], 'q');
  restored.Read(c, out.data());
  EXPECT_EQ(out[0], 'z');
  // The freed page is recycled on the next allocation.
  EXPECT_EQ(restored.Allocate(), b);
}

TEST(PageFilePersistenceTest, PageSizeMismatchRejected) {
  PageFile file(64);
  (void)file.Allocate();
  const std::string path = TempPath("pagefile_mismatch.img");
  ASSERT_TRUE(file.Save(path).ok());
  PageFile other(128);
  EXPECT_TRUE(other.Load(path).IsInvalidArgument());
}

TEST(PageFilePersistenceTest, GarbageRejected) {
  const std::string path = TempPath("garbage.img");
  std::ofstream(path, std::ios::binary) << "this is not a page file image";
  PageFile file(64);
  EXPECT_TRUE(file.Load(path).IsCorruption());
}

TEST(SRTreePersistenceTest, SaveOpenRoundTrip) {
  SRTree::Options options;
  options.dim = 8;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  SRTree tree(options);
  const Dataset data = MakeUniformDataset(1500, 8, /*seed=*/83);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }

  const std::string path = TempPath("srtree.idx");
  ASSERT_TRUE(tree.Save(path).ok());

  auto restored = SRTree::Open(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  SRTree& reopened = **restored;
  EXPECT_EQ(reopened.size(), tree.size());
  EXPECT_EQ(reopened.dim(), 8);
  EXPECT_EQ(reopened.height(), tree.height());
  EXPECT_TRUE(reopened.CheckInvariants().ok());

  // Identical query answers.
  for (const Point& q : SampleQueriesFromDataset(data, 10, /*seed=*/87)) {
    const auto expected = tree.Search(q, QuerySpec::Knn(10)).neighbors;
    const auto actual = reopened.Search(q, QuerySpec::Knn(10)).neighbors;
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].oid, expected[i].oid);
    }
  }

  // The reopened index stays fully functional.
  ASSERT_TRUE(reopened.Insert(Point(8, 0.5), 99999).ok());
  ASSERT_TRUE(reopened.Delete(data.point(0), 0).ok());
  EXPECT_TRUE(reopened.CheckInvariants().ok());
}

TEST(SRTreePersistenceTest, OpenRestoresOptions) {
  SRTree::Options options;
  options.dim = 3;
  options.page_size = 1024;
  options.leaf_data_size = 16;
  options.use_rect_in_mindist = false;
  SRTree tree(options);
  ASSERT_TRUE(tree.Insert(Point{0.1, 0.2, 0.3}, 7).ok());
  const std::string path = TempPath("srtree_options.idx");
  ASSERT_TRUE(tree.Save(path).ok());

  auto restored = SRTree::Open(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->dim(), 3);
  EXPECT_EQ((*restored)->leaf_capacity(), tree.leaf_capacity());
  const auto result =
      (*restored)->Search(Point{0.1, 0.2, 0.3}, QuerySpec::Knn(1)).neighbors;
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 7u);
}

TEST(SRTreePersistenceTest, OpenRejectsGarbage) {
  const std::string path = TempPath("srtree_garbage.idx");
  std::ofstream(path, std::ios::binary) << "junk junk junk junk junk";
  EXPECT_FALSE(SRTree::Open(path).ok());
  EXPECT_FALSE(SRTree::Open(TempPath("does_not_exist.idx")).ok());
}

}  // namespace
}  // namespace srtree
