#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sr_tree.h"
#include "src/debug/fault_injection.h"
#include "src/index/index_factory.h"
#include "src/storage/crc32c.h"
#include "src/storage/image_io.h"
#include "src/storage/page_file.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok()) << path;
  return bytes;
}

TEST(PageFilePersistenceTest, RoundTrip) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  file.Free(b);
  std::vector<char> data(64, 'q');
  file.Write(a, data.data());
  std::vector<char> data2(64, 'z');
  file.Write(c, data2.data());

  const std::string path = TempPath("pagefile.img");
  ASSERT_TRUE(file.Save(path).ok());

  PageFile restored(64);
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.live_pages(), 2u);
  std::vector<char> out(64);
  restored.Read(a, out.data());
  EXPECT_EQ(out[0], 'q');
  restored.Read(c, out.data());
  EXPECT_EQ(out[0], 'z');
  // The freed page is recycled on the next allocation.
  EXPECT_EQ(restored.Allocate(), b);
}

TEST(PageFilePersistenceTest, PageSizeMismatchRejected) {
  PageFile file(64);
  (void)file.Allocate();
  const std::string path = TempPath("pagefile_mismatch.img");
  ASSERT_TRUE(file.Save(path).ok());
  PageFile other(128);
  EXPECT_TRUE(other.Load(path).IsInvalidArgument());
}

TEST(PageFilePersistenceTest, GarbageRejected) {
  const std::string path = TempPath("garbage.img");
  std::ofstream(path, std::ios::binary) << "this is not a page file image";
  PageFile file(64);
  EXPECT_TRUE(file.Load(path).IsCorruption());
}

TEST(SRTreePersistenceTest, SaveOpenRoundTrip) {
  SRTree::Options options;
  options.dim = 8;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  SRTree tree(options);
  const Dataset data = MakeUniformDataset(1500, 8, /*seed=*/83);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }

  const std::string path = TempPath("srtree.idx");
  ASSERT_TRUE(tree.Save(path).ok());

  auto restored = SRTree::Open(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  SRTree& reopened = **restored;
  EXPECT_EQ(reopened.size(), tree.size());
  EXPECT_EQ(reopened.dim(), 8);
  EXPECT_EQ(reopened.height(), tree.height());
  EXPECT_TRUE(reopened.CheckInvariants().ok());

  // Identical query answers.
  for (const Point& q : SampleQueriesFromDataset(data, 10, /*seed=*/87)) {
    const auto expected = tree.Search(q, QuerySpec::Knn(10)).neighbors;
    const auto actual = reopened.Search(q, QuerySpec::Knn(10)).neighbors;
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].oid, expected[i].oid);
    }
  }

  // The reopened index stays fully functional.
  ASSERT_TRUE(reopened.Insert(Point(8, 0.5), 99999).ok());
  ASSERT_TRUE(reopened.Delete(data.point(0), 0).ok());
  EXPECT_TRUE(reopened.CheckInvariants().ok());
}

TEST(SRTreePersistenceTest, OpenRestoresOptions) {
  SRTree::Options options;
  options.dim = 3;
  options.page_size = 1024;
  options.leaf_data_size = 16;
  options.use_rect_in_mindist = false;
  SRTree tree(options);
  ASSERT_TRUE(tree.Insert(Point{0.1, 0.2, 0.3}, 7).ok());
  const std::string path = TempPath("srtree_options.idx");
  ASSERT_TRUE(tree.Save(path).ok());

  auto restored = SRTree::Open(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->dim(), 3);
  EXPECT_EQ((*restored)->leaf_capacity(), tree.leaf_capacity());
  const auto result =
      (*restored)->Search(Point{0.1, 0.2, 0.3}, QuerySpec::Knn(1)).neighbors;
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 7u);
}

TEST(SRTreePersistenceTest, OpenRejectsGarbage) {
  const std::string path = TempPath("srtree_garbage.idx");
  std::ofstream(path, std::ios::binary) << "junk junk junk junk junk";
  EXPECT_FALSE(SRTree::Open(path).ok());
  EXPECT_FALSE(SRTree::Open(TempPath("does_not_exist.idx")).ok());
}

// ---------------------------------------------------------------------------
// Staged load: a failed LoadFrom must leave the previous contents
// byte-identical, even when the corruption is discovered deep in the image.

TEST(PageFilePersistenceTest, FailedLoadLeavesPriorContentsUntouched) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  std::vector<char> da(64, 'a'), db(64, 'b');
  file.Write(a, da.data());
  file.Write(b, db.data());
  const std::string before_a(file.PeekPage(a), 64);
  const std::string before_b(file.PeekPage(b), 64);

  // A valid image, corrupted one byte inside the last page's payload so
  // the header parses and staging gets well underway before failing.
  std::ostringstream buf(std::ios::binary);
  ASSERT_TRUE(file.SaveTo(buf).ok());
  std::string image = std::move(buf).str();
  image[image.size() - 40] ^= 0x10;

  std::istringstream in(image, std::ios::binary);
  EXPECT_TRUE(file.LoadFrom(in).IsCorruption());

  EXPECT_EQ(file.live_pages(), 2u);
  EXPECT_EQ(std::string(file.PeekPage(a), 64), before_a);
  EXPECT_EQ(std::string(file.PeekPage(b), 64), before_b);
  // Still fully functional: the next allocation extends the file.
  EXPECT_EQ(file.Allocate(), 2u);
}

// A forged header claiming a multi-terabyte page count must be rejected
// against the actual stream size, not trusted into allocation.
TEST(PageFilePersistenceTest, ForgedHugePageCountRejected) {
  PageFile file(64);
  (void)file.Allocate();
  std::ostringstream buf(std::ios::binary);
  ASSERT_TRUE(file.SaveTo(buf).ok());
  std::string image = std::move(buf).str();

  // Header layout: magic(4) version(4) page_size(8) page_count(8)
  // live_count(8) header_crc(4). Patch page_count to 2^40 pages (64 TiB of
  // claimed payload) and re-seal the header CRC so the size equation — not
  // the checksum — is what must catch it.
  const uint64_t forged = uint64_t{1} << 40;
  for (int i = 0; i < 8; ++i) {
    image[16 + i] = static_cast<char>(forged >> (8 * i));
  }
  const uint32_t crc = Crc32c(image.data(), 32);
  for (int i = 0; i < 4; ++i) {
    image[32 + i] = static_cast<char>(crc >> (8 * i));
  }

  PageFile target(64);
  std::istringstream in(image, std::ios::binary);
  EXPECT_TRUE(target.LoadFrom(in).IsCorruption());
  EXPECT_EQ(target.live_pages(), 0u);
}

// An in-place overwrite torn at a record boundary splices two individually
// valid images; only the whole-image footer CRC can catch that.
TEST(PageFilePersistenceTest, TornSpliceOfTwoValidImagesRejected) {
  PageFile newer(64), older(64);
  std::vector<char> dn(64, 'n'), dold(64, 'o');
  for (int i = 0; i < 4; ++i) {
    newer.Write(newer.Allocate(), dn.data());
    older.Write(older.Allocate(), dold.data());
  }
  std::ostringstream bn(std::ios::binary), bo(std::ios::binary);
  ASSERT_TRUE(newer.SaveTo(bn).ok());
  ASSERT_TRUE(older.SaveTo(bo).ok());
  const std::string image_new = std::move(bn).str();
  const std::string image_old = std::move(bo).str();
  ASSERT_EQ(image_new.size(), image_old.size());

  // Same page counts, same sizes: every per-record check passes on both
  // sides of the cut. Cut inside the record area, past the header.
  const std::string spliced =
      debug::SpliceImages(image_new, image_old, 36 + 1 + 64 + 4);
  PageFile target(64);
  std::istringstream in(spliced, std::ios::binary);
  const Status status = target.LoadFrom(in);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

// The v1 (pre-checksum, host-endian) read path has been removed: a version-1
// image must fail loudly with a "re-save with v2" message, and must leave
// the target PageFile untouched.
TEST(PageFilePersistenceTest, V1ImageIsRejectedWithClearError) {
  std::ostringstream buf(std::ios::binary);
  PutLe32(buf, 0x53525046u);  // "SRPF" page-file magic
  PutLe32(buf, 1u);           // retired format version
  // v1 header continuation (page size, page count) — never reached.
  PutLe64(buf, 64u);
  PutLe64(buf, 0u);

  PageFile target(64);
  const PageId keep = target.Allocate();
  std::vector<char> data(64, 'k');
  target.Write(keep, data.data());

  std::istringstream in(std::move(buf).str(), std::ios::binary);
  const Status status = target.LoadFrom(in);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.message().find("re-save with v2"), std::string::npos)
      << status.ToString();
  // The rejected load left the existing contents byte-for-byte intact.
  EXPECT_EQ(target.live_pages(), 1u);
  EXPECT_EQ(std::string(target.PeekPage(keep), 64), std::string(64, 'k'));
}

// Regression: IndexImageFile::Open used to memcpy strlen(tag) bytes of the
// caller's tag into a fixed 8-byte buffer — an over-long tag overran the
// stack. It must now be rejected up front, as the write side already does.
TEST(IndexImageTest, OversizeAndEmptyOpenTagsRejected) {
  SRTree::Options options;
  options.dim = 2;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  SRTree tree(options);
  ASSERT_TRUE(tree.Insert(Point{0.25, 0.75}, 1).ok());
  const std::string path = TempPath("tag_bounds.idx");
  ASSERT_TRUE(tree.Save(path).ok());

  char header[64] = {};
  IndexImageFile image;
  Status status = image.Open(path, "definitely-more-than-eight-bytes", header,
                             sizeof(header));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();

  IndexImageFile image2;
  status = image2.Open(path, "", header, sizeof(header));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();

  // An exactly-8-byte tag is the longest legal tag and still round-trips
  // through the normal Open path (wrong tag → Corruption, not a crash).
  IndexImageFile image3;
  status = image3.Open(path, "eightchr", header, sizeof(header));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

// ---------------------------------------------------------------------------
// Atomic save: an injected fault anywhere in the write/flush/rename path
// must leave the previous image byte-identical and no temp file behind.

TEST(AtomicSaveTest, InjectedFaultsLeavePreviousImageIntact) {
  SRTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  SRTree tree(options);
  const Dataset data = MakeUniformDataset(400, 4, /*seed=*/11);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const std::string path = TempPath("atomic_save.idx");
  ASSERT_TRUE(tree.Save(path).ok());
  const std::string before = ReadAll(path);

  ASSERT_TRUE(tree.Insert(Point(4, 0.25), 40000).ok());
  debug::FaultInjector injector;
  for (const debug::FaultKind kind :
       {debug::FaultKind::kShortWrite, debug::FaultKind::kFailedFlush,
        debug::FaultKind::kFailedRename}) {
    injector.Arm(kind, 0.5);
    SetSaveFailpointsForTest(&injector);
    const Status status = tree.Save(path);
    SetSaveFailpointsForTest(nullptr);
    EXPECT_FALSE(status.ok()) << debug::FaultKindName(kind);
    EXPECT_EQ(ReadAll(path), before) << debug::FaultKindName(kind);
    std::string tmp;
    EXPECT_FALSE(ReadFileToString(path + ".tmp", &tmp).ok())
        << debug::FaultKindName(kind);
  }
  EXPECT_EQ(injector.faults_delivered(), 3u);

  // With the failpoints gone the same save lands, and the new image is
  // loadable and reflects the extra insert.
  ASSERT_TRUE(tree.Save(path).ok());
  auto reopened = OpenIndex(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), tree.size());
}

// ---------------------------------------------------------------------------
// Every index structure round-trips through its Save() and the tag-
// dispatching OpenIndex(), answering queries identically afterwards.

TEST(OpenIndexTest, AllIndexTypesRoundTrip) {
  const Dataset data = MakeUniformDataset(400, 4, /*seed=*/29);
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  for (size_t i = 0; i < data.size(); ++i) {
    const PointView view = data.point(i);
    points.emplace_back(view.begin(), view.end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  config.leaf_data_size = 0;

  std::vector<IndexType> types = AllTreeTypes();
  types.push_back(IndexType::kXTree);
  types.push_back(IndexType::kTvTree);
  for (const IndexType type : types) {
    SCOPED_TRACE(IndexTypeName(type));
    std::unique_ptr<PointIndex> index = MakeIndex(type, config);
    ASSERT_TRUE(index->BulkLoad(points, oids).ok());
    const std::string path =
        TempPath("roundtrip_" + std::to_string(static_cast<int>(type)));
    ASSERT_TRUE(index->Save(path).ok());

    auto reopened = OpenIndex(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->name(), index->name());
    EXPECT_EQ((*reopened)->size(), index->size());
    EXPECT_EQ((*reopened)->dim(), index->dim());
    EXPECT_TRUE((*reopened)->CheckInvariants().ok());
    for (const Point& q : SampleQueriesFromDataset(data, 8, /*seed=*/31)) {
      const auto expected = index->Search(q, QuerySpec::Knn(6)).neighbors;
      const auto actual = (*reopened)->Search(q, QuerySpec::Knn(6)).neighbors;
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].oid, expected[i].oid);
        EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(OpenIndexTest, RejectsGarbageAndForeignFiles) {
  const std::string garbage = TempPath("open_index_garbage");
  std::ofstream(garbage, std::ios::binary) << "no index in here";
  EXPECT_FALSE(OpenIndex(garbage).ok());
  EXPECT_FALSE(OpenIndex(TempPath("open_index_missing")).ok());

  // A bare PageFile image has no SRIX container and must be refused.
  PageFile file(64);
  (void)file.Allocate();
  const std::string bare = TempPath("open_index_bare_pagefile");
  ASSERT_TRUE(file.Save(bare).ok());
  EXPECT_FALSE(OpenIndex(bare).ok());
}

// A pre-v2 SR-tree file is still RECOGNIZED (so the failure names the real
// cause) but no longer opens: the compatibility window closed and the v1
// path — the last unchecksummed loader — was removed.
TEST(OpenIndexTest, LegacySrTreeV1ImageIsRecognizedButRejected) {
  const std::string path = TempPath("legacy_sr_v1.idx");
  // First 4 bytes of the retired format: the raw "SRT1" header magic.
  std::string bytes;
  bytes.push_back('1');
  bytes.push_back('T');
  bytes.push_back('R');
  bytes.push_back('S');
  bytes.append(128, '\0');  // rest of what used to be the v1 header
  ASSERT_TRUE(WriteStringToFileForTest(bytes, path).ok());

  StatusOr<std::string> tag = PeekIndexImageTag(path);
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();
  EXPECT_EQ(*tag, "legacy-sr-v1");

  auto reopened = OpenIndex(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInvalidArgument())
      << reopened.status().ToString();
  EXPECT_NE(reopened.status().message().find("re-save with v2"),
            std::string::npos)
      << reopened.status().ToString();

  auto direct = SRTree::Open(path);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsInvalidArgument())
      << direct.status().ToString();
}

}  // namespace
}  // namespace srtree
