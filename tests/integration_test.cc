// End-to-end mini-reproductions: tiny versions of the paper's headline
// comparisons, asserted with deterministic seeds. These are the claims the
// full bench harness reproduces at scale.

#include <gtest/gtest.h>

#include "src/benchlib/experiment.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"
#include "tests/test_util.h"

namespace srtree {
namespace {

class MiniReproduction : public ::testing::Test {
 protected:
  static QueryMetrics Run(IndexType type, const Dataset& data,
                          const std::vector<Point>& queries, int k) {
    IndexConfig config;
    config.dim = data.dim();
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);
    const Status status = index->CheckInvariants();
    EXPECT_TRUE(status.ok()) << index->name() << ": " << status.ToString();
    return RunKnnWorkload(*index, queries, k);
  }
};

TEST_F(MiniReproduction, SphereVsRectangleVolumeAndDiameter) {
  // Section 3.2/3.3 (Figure 5): on uniform 16-d data, SS-tree leaf spheres
  // have far larger volume than R*-tree leaf rectangles, yet shorter
  // diameters.
  const Dataset data = MakeUniformDataset(4000, 16, /*seed=*/101);
  IndexConfig config;
  config.dim = 16;

  auto ss = MakeIndex(IndexType::kSSTree, config);
  BuildIndexFromDataset(*ss, data);
  auto rstar = MakeIndex(IndexType::kRStarTree, config);
  BuildIndexFromDataset(*rstar, data);

  const RegionSummary ss_regions = ss->LeafRegionSummary();
  const RegionSummary rstar_regions = rstar->LeafRegionSummary();

  EXPECT_GT(ss_regions.avg_sphere_volume,
            rstar_regions.avg_rect_volume * 10.0);
  EXPECT_LT(ss_regions.avg_sphere_diameter, rstar_regions.avg_rect_diagonal);
  // Figure 6: bounding rectangles of the SS-tree's own leaves are smaller
  // by orders of magnitude than its bounding spheres.
  EXPECT_LT(ss_regions.avg_rect_volume,
            ss_regions.avg_sphere_volume / 10.0);
}

TEST_F(MiniReproduction, SrTreeRegionsCombineBothAdvantages) {
  // Section 5.2 (Figure 12): SR-tree leaf regions have volumes no larger
  // than its bounding rectangles and diameters no larger than its spheres;
  // the sphere diameter tracks the SS-tree's.
  const Dataset data = MakeUniformDataset(4000, 16, /*seed=*/103);
  IndexConfig config;
  config.dim = 16;

  auto sr = MakeIndex(IndexType::kSRTree, config);
  BuildIndexFromDataset(*sr, data);
  auto ss = MakeIndex(IndexType::kSSTree, config);
  BuildIndexFromDataset(*ss, data);

  const RegionSummary sr_regions = sr->LeafRegionSummary();
  const RegionSummary ss_regions = ss->LeafRegionSummary();

  // Rect volume bounds the true region volume; it must undercut the
  // SS-tree's sphere volume dramatically.
  EXPECT_LT(sr_regions.avg_rect_volume,
            ss_regions.avg_sphere_volume / 100.0);
  // Sphere diameter bounds the true region diameter; it must be in the
  // same ballpark as the SS-tree's spheres (within 25%).
  EXPECT_LT(sr_regions.avg_sphere_diameter,
            ss_regions.avg_sphere_diameter * 1.25);
}

TEST_F(MiniReproduction, SrTreeBeatsSsTreeOnNonUniformData) {
  // The headline result (Figures 10/11): fewer disk reads per k-NN query
  // than the SS-tree, especially on non-uniform ("real") data.
  HistogramConfig histo;
  histo.n = 4000;
  histo.dim = 16;
  histo.seed = 107;
  const Dataset data = MakeHistogramDataset(histo);
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 40, /*seed=*/109);

  const QueryMetrics sr = Run(IndexType::kSRTree, data, queries, 21);
  const QueryMetrics ss = Run(IndexType::kSSTree, data, queries, 21);

  EXPECT_LT(sr.disk_reads, ss.disk_reads);
  // Figure 14's decomposition: the SR-tree pays more node-level reads
  // (smaller fanout) but saves more leaf-level reads than it loses.
  EXPECT_LT(sr.leaf_reads, ss.leaf_reads);
}

TEST_F(MiniReproduction, SsTreeBeatsRStarOnHighDimensionalData) {
  // Section 3.1 (Figures 3/4): the SS-tree outperforms the R*-tree and the
  // K-D-B-tree on 16-d nearest neighbor queries.
  HistogramConfig histo;
  histo.n = 4000;
  histo.dim = 16;
  histo.seed = 113;
  const Dataset data = MakeHistogramDataset(histo);
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 40, /*seed=*/127);

  const QueryMetrics ss = Run(IndexType::kSSTree, data, queries, 21);
  const QueryMetrics rstar = Run(IndexType::kRStarTree, data, queries, 21);
  const QueryMetrics kdb = Run(IndexType::kKdbTree, data, queries, 21);

  EXPECT_LT(ss.disk_reads, rstar.disk_reads);
  EXPECT_LT(ss.disk_reads, kdb.disk_reads);
}

TEST_F(MiniReproduction, AllTreesReturnIdenticalAnswers) {
  const Dataset data = MakeUniformDataset(2000, 16, /*seed=*/131);
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 10, /*seed=*/137);
  IndexConfig config;
  config.dim = 16;

  std::vector<std::vector<Neighbor>> per_tree;
  for (const IndexType type : AllTreeTypes()) {
    auto index = MakeIndex(type, config);
    BuildIndexFromDataset(*index, data);
    std::vector<Neighbor> all;
    for (const Point& q : queries) {
      for (const Neighbor& n :
           index->Search(q, QuerySpec::Knn(21)).neighbors) {
        all.push_back(n);
      }
    }
    per_tree.push_back(std::move(all));
  }
  for (size_t t = 1; t < per_tree.size(); ++t) {
    ASSERT_EQ(per_tree[t].size(), per_tree[0].size());
    for (size_t i = 0; i < per_tree[t].size(); ++i) {
      EXPECT_EQ(per_tree[t][i].oid, per_tree[0][i].oid);
    }
  }
}

}  // namespace
}  // namespace srtree
