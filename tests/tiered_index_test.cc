// TieredIndex: static tier + dynamic delta + tombstones. These tests cover
// delete-masking of static points (the tombstone path), re-insert after a
// tombstone, Compact() semantics (contents/version preserved, delta and
// tombstones drained, snapshot readers undisturbed), the Save/Open round
// trip through the factory, and full mutation fuzz with a compaction
// schedule folded in.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/debug/fuzzer.h"
#include "src/debug/structural_auditor.h"
#include "src/index/brute_force.h"
#include "src/index/index_factory.h"
#include "src/statictier/tiered_index.h"
#include "src/storage/image_io.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TieredIndex::Options SmallOptions(int dim) {
  TieredIndex::Options options;
  options.dim = dim;
  options.page_size = 1024;
  return options;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].oid, want[i].oid) << "rank " << i;
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9) << "rank " << i;
  }
}

// Bulk-loads `n` points into the tiered index (→ static tier) and a
// brute-force oracle; returns the points for later targeting.
std::vector<Point> LoadBoth(TieredIndex& index, BruteForceIndex& oracle,
                            size_t n, int dim, uint64_t seed) {
  const Dataset data = MakeUniformDataset(n, dim, seed);
  std::vector<Point> points;
  std::vector<uint32_t> oids;
  for (size_t i = 0; i < data.size(); ++i) {
    points.emplace_back(data.point(i).begin(), data.point(i).end());
    oids.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(index.BulkLoad(points, oids).ok());
  EXPECT_TRUE(oracle.BulkLoad(points, oids).ok());
  return points;
}

TEST(TieredIndexTest, DeletesMaskStaticPointsInAllQueryKinds) {
  constexpr int kDim = 4;
  TieredIndex index(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const std::vector<Point> points = LoadBoth(index, oracle, 1000, kDim, 43);

  // Delete every third static point: these become tombstones (the static
  // tier is immutable), and a few fresh inserts land in the delta.
  for (size_t i = 0; i < points.size(); i += 3) {
    ASSERT_TRUE(index.Delete(points[i], static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(oracle.Delete(points[i], static_cast<uint32_t>(i)).ok());
  }
  EXPECT_GT(index.tombstone_count_for_test(), 0u);
  for (size_t i = 0; i < 50; ++i) {
    Point p = points[i];
    p[0] += 0.37;
    const uint32_t oid = static_cast<uint32_t>(10000 + i);
    ASSERT_TRUE(index.Insert(p, oid).ok());
    ASSERT_TRUE(oracle.Insert(p, oid).ok());
  }
  EXPECT_EQ(index.size(), oracle.size());
  EXPECT_TRUE(index.CheckInvariants().ok());

  for (size_t qi = 0; qi < 20; ++qi) {
    const Point& q = points[qi * 7 % points.size()];
    ExpectSameNeighbors(index.Search(q, QuerySpec::Knn(10)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    ExpectSameNeighbors(index.Search(q, QuerySpec::KnnBestFirst(10)).neighbors,
                        oracle.Search(q, QuerySpec::KnnBestFirst(10)).neighbors);
    const double radius =
        oracle.Search(q, QuerySpec::Knn(8)).neighbors.back().distance;
    ExpectSameNeighbors(index.Search(q, QuerySpec::Range(radius)).neighbors,
                        oracle.Search(q, QuerySpec::Range(radius)).neighbors);
  }
}

TEST(TieredIndexTest, ReinsertAfterTombstoneServesFromDelta) {
  constexpr int kDim = 3;
  TieredIndex index(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const std::vector<Point> points = LoadBoth(index, oracle, 200, kDim, 47);

  // Delete a static pair, then insert the exact same (point, oid) again:
  // the delta copy must serve queries even though the tombstone persists.
  ASSERT_TRUE(index.Delete(points[5], 5).ok());
  ASSERT_TRUE(oracle.Delete(points[5], 5).ok());
  ASSERT_TRUE(index.Insert(points[5], 5).ok());
  ASSERT_TRUE(oracle.Insert(points[5], 5).ok());
  EXPECT_EQ(index.size(), oracle.size());

  const auto got = index.Search(points[5], QuerySpec::Knn(1)).neighbors;
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].oid, 5u);
  EXPECT_EQ(got[0].distance, 0.0);
  EXPECT_TRUE(index.CheckInvariants().ok());

  // Compacting afterwards folds everything back into one clean static tier.
  ASSERT_TRUE(index.Compact().ok());
  const auto after = index.Search(points[5], QuerySpec::Knn(1)).neighbors;
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].oid, 5u);
}

TEST(TieredIndexTest, CompactPreservesContentsVersionAndDrainsDelta) {
  constexpr int kDim = 4;
  TieredIndex index(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const std::vector<Point> points = LoadBoth(index, oracle, 600, kDim, 53);

  for (size_t i = 0; i < points.size(); i += 5) {
    ASSERT_TRUE(index.Delete(points[i], static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(oracle.Delete(points[i], static_cast<uint32_t>(i)).ok());
  }
  for (size_t i = 0; i < 80; ++i) {
    Point p = points[i];
    p[1] += 0.21;
    ASSERT_TRUE(index.Insert(p, static_cast<uint32_t>(5000 + i)).ok());
    ASSERT_TRUE(oracle.Insert(p, static_cast<uint32_t>(5000 + i)).ok());
  }
  EXPECT_GT(index.delta_size_for_test(), 0u);
  EXPECT_GT(index.tombstone_count_for_test(), 0u);

  const uint64_t version_before = index.AcquireSnapshot()->version();
  const size_t size_before = index.size();
  ASSERT_TRUE(index.Compact().ok());

  // Representation changed, contents did not: delta and tombstones are
  // drained, size and version are untouched, queries still match.
  EXPECT_EQ(index.delta_size_for_test(), 0u);
  EXPECT_EQ(index.tombstone_count_for_test(), 0u);
  EXPECT_EQ(index.size(), size_before);
  EXPECT_EQ(index.AcquireSnapshot()->version(), version_before);
  EXPECT_TRUE(index.CheckInvariants().ok());
  EXPECT_TRUE(debug::StructuralAuditor().Audit(index).empty());
  for (size_t qi = 0; qi < 15; ++qi) {
    const Point& q = points[qi * 11 % points.size()];
    ExpectSameNeighbors(index.Search(q, QuerySpec::Knn(10)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
  }
}

TEST(TieredIndexTest, SnapshotPinnedBeforeCompactSeesOldContents) {
  constexpr int kDim = 3;
  TieredIndex index(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const std::vector<Point> points = LoadBoth(index, oracle, 300, kDim, 59);

  const std::unique_ptr<IndexSnapshot> snap = index.AcquireSnapshot();
  const size_t snap_size = snap->size();

  // Mutate and compact AFTER the snapshot was pinned: the snapshot must
  // keep answering from the pre-mutation tiers.
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index.Delete(points[i], static_cast<uint32_t>(i)).ok());
  }
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.size(), points.size() - 100);

  EXPECT_EQ(snap->size(), snap_size);
  for (size_t qi = 0; qi < 10; ++qi) {
    const Point& q = points[qi];  // deleted from the live index, not the snap
    const auto got = snap->Search(q, QuerySpec::Knn(1)).neighbors;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].oid, static_cast<uint32_t>(qi));
    EXPECT_EQ(got[0].distance, 0.0);
    // The live index must NOT return the deleted point at distance 0.
    const auto live = index.Search(q, QuerySpec::Knn(1)).neighbors;
    ASSERT_EQ(live.size(), 1u);
    EXPECT_NE(live[0].oid, static_cast<uint32_t>(qi));
  }
}

TEST(TieredIndexTest, SaveOpenRoundTripThroughFactory) {
  constexpr int kDim = 5;
  TieredIndex index(SmallOptions(kDim));
  BruteForceIndex::Options bf;
  bf.dim = kDim;
  BruteForceIndex oracle(bf);
  const std::vector<Point> points = LoadBoth(index, oracle, 800, kDim, 61);
  for (size_t i = 0; i < points.size(); i += 6) {
    ASSERT_TRUE(index.Delete(points[i], static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(oracle.Delete(points[i], static_cast<uint32_t>(i)).ok());
  }
  for (size_t i = 0; i < 40; ++i) {
    Point p = points[i];
    p[2] += 0.13;
    ASSERT_TRUE(index.Insert(p, static_cast<uint32_t>(7000 + i)).ok());
    ASSERT_TRUE(oracle.Insert(p, static_cast<uint32_t>(7000 + i)).ok());
  }

  const std::string path = TempPath("tiered.idx");
  ASSERT_TRUE(index.Save(path).ok());
  StatusOr<std::string> tag = PeekIndexImageTag(path);
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();
  EXPECT_EQ(*tag, TieredIndex::kImageTag);

  auto reopened = OpenIndex(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), oracle.size());
  EXPECT_TRUE((*reopened)->CheckInvariants().ok());
  // The image holds one merged static tier; the restored delta is empty.
  auto* tiered = dynamic_cast<TieredIndex*>(reopened->get());
  ASSERT_NE(tiered, nullptr);
  EXPECT_EQ(tiered->delta_size_for_test(), 0u);
  EXPECT_EQ(tiered->tombstone_count_for_test(), 0u);

  for (size_t qi = 0; qi < 15; ++qi) {
    const Point& q = points[qi * 13 % points.size()];
    ExpectSameNeighbors((*reopened)->Search(q, QuerySpec::Knn(10)).neighbors,
                        oracle.Search(q, QuerySpec::Knn(10)).neighbors);
    const double radius =
        oracle.Search(q, QuerySpec::Knn(5)).neighbors.back().distance;
    ExpectSameNeighbors(
        (*reopened)->Search(q, QuerySpec::Range(radius)).neighbors,
        oracle.Search(q, QuerySpec::Range(radius)).neighbors);
  }

  // The reopened index stays fully mutable.
  ASSERT_TRUE(tiered->Insert(Point(kDim, 0.5), 99999).ok());
  ASSERT_TRUE(tiered->Delete(points[1], 1).ok());
  EXPECT_TRUE(tiered->CheckInvariants().ok());
}

// Full mutation fuzz through the factory, with a compaction every other
// batch folded into the schedule: results must stay oracle-exact and the
// audit clean across insert/delete/compact interleavings.
TEST(TieredIndexTest, MutationFuzzWithCompactionSchedule) {
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  std::unique_ptr<PointIndex> index =
      MakeIndex(IndexType::kTieredSRTree, config);

  debug::FuzzOptions options;
  options.seed = 818;
  options.num_mutations = 3000;
  options.batch_size = 250;
  options.initial_points = 1500;
  options.compact_every_batches = 2;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(index);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(fuzzer.stats().compacts, 5u);
}

// Save/Open round-trips interleaved with mutations AND compactions.
TEST(TieredIndexTest, MutationFuzzWithReopenAndCompaction) {
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  std::unique_ptr<PointIndex> index =
      MakeIndex(IndexType::kTieredSRTree, config);

  const std::string path = TempPath("tiered_fuzz_roundtrip.idx");
  debug::FuzzOptions options;
  options.seed = 919;
  options.num_mutations = 2000;
  options.batch_size = 250;
  options.initial_points = 1000;
  options.compact_every_batches = 3;
  options.reopen_every_batches = 4;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(
      index,
      [&path](PointIndex& current) -> StatusOr<std::unique_ptr<PointIndex>> {
        RETURN_IF_ERROR(current.Save(path));
        return OpenIndex(path);
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(fuzzer.stats().reopens, 1u);
  EXPECT_GE(fuzzer.stats().compacts, 1u);
}

}  // namespace
}  // namespace srtree
