// Mutation-fuzz harness run: every tree variant is driven through seeded
// randomized interleavings of Insert / Delete / Search() in all three
// query kinds (plus Save/OpenIndex round-trips for every
// dynamic tree), cross-checked against the brute-force oracle, with the
// structural auditor run after every batch. Seeds are fixed, so a failure
// reproduces from the log.

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/debug/fuzzer.h"
#include "src/index/index_factory.h"
#include "tests/test_util.h"

namespace srtree {
namespace {

using testing::MakeSmallPageIndex;
using testing::TypeToken;

struct FuzzParam {
  IndexType type;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<FuzzParam>& info) {
  return TypeToken(info.param.type) + "_seed" +
         std::to_string(info.param.seed);
}

class MutationFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MutationFuzzTest, RandomizedOpsMatchBruteForceAndStayAudited) {
  constexpr int kDim = 4;
  std::unique_ptr<PointIndex> index =
      MakeSmallPageIndex(GetParam().type, kDim);

  debug::FuzzOptions options;
  options.seed = GetParam().seed;
  options.num_mutations = 5000;
  options.batch_size = 250;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(index);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fuzzer.stats().inserts + fuzzer.stats().deletes +
                fuzzer.stats().missing_deletes,
            options.num_mutations);
  EXPECT_GE(fuzzer.stats().audits, options.num_mutations / options.batch_size);
}

// The six dynamic tree variants, two fixed seeds each.
INSTANTIATE_TEST_SUITE_P(
    AllDynamicTrees, MutationFuzzTest,
    ::testing::Values(FuzzParam{IndexType::kSRTree, 101},
                      FuzzParam{IndexType::kSRTree, 202},
                      FuzzParam{IndexType::kSSTree, 101},
                      FuzzParam{IndexType::kSSTree, 202},
                      FuzzParam{IndexType::kRStarTree, 101},
                      FuzzParam{IndexType::kRStarTree, 202},
                      FuzzParam{IndexType::kKdbTree, 101},
                      FuzzParam{IndexType::kKdbTree, 202},
                      FuzzParam{IndexType::kXTree, 101},
                      FuzzParam{IndexType::kXTree, 202},
                      FuzzParam{IndexType::kTvTree, 101},
                      FuzzParam{IndexType::kTvTree, 202}),
    ParamName);

// The static VAMSplit R-tree cannot absorb mutations; it gets a bulk load
// followed by query-only batches with the auditor enabled.
TEST(MutationFuzzStaticTest, VamSplitQueryOnlyFuzz) {
  constexpr int kDim = 4;
  std::unique_ptr<PointIndex> index =
      MakeSmallPageIndex(IndexType::kVamSplitRTree, kDim);

  debug::FuzzOptions options;
  options.seed = 303;
  options.num_mutations = 0;
  options.initial_points = 3000;
  options.query_only_batches = 10;
  options.knn_queries_per_batch = 25;
  options.range_queries_per_batch = 25;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(index);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fuzzer.stats().knn_queries, 250u);
}

// Save/Open round-trips interleaved into the mutation schedule, through
// the virtual PointIndex::Save and the factory OpenIndex dispatch: the
// reopened tree must hold identical contents and still pass the audit.
class MutationFuzzPersistenceTest
    : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MutationFuzzPersistenceTest, SurvivesSaveOpenRoundTrips) {
  constexpr int kDim = 4;
  std::unique_ptr<PointIndex> index =
      MakeSmallPageIndex(GetParam().type, kDim);

  const std::string path = ::testing::TempDir() + "/fuzz_roundtrip_" +
                           TypeToken(GetParam().type) + ".idx";

  debug::FuzzOptions options;
  options.seed = GetParam().seed;
  options.num_mutations = 5000;
  options.batch_size = 250;
  options.reopen_every_batches = 4;

  debug::MutationFuzzer fuzzer(options);
  const Status status = fuzzer.Run(
      index,
      [&path](PointIndex& current)
          -> StatusOr<std::unique_ptr<PointIndex>> {
        RETURN_IF_ERROR(current.Save(path));
        return OpenIndex(path);
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(fuzzer.stats().reopens, 4u);
}

// Every dynamic tree variant goes through the generic persistence path.
INSTANTIATE_TEST_SUITE_P(
    AllDynamicTrees, MutationFuzzPersistenceTest,
    ::testing::Values(FuzzParam{IndexType::kSRTree, 404},
                      FuzzParam{IndexType::kSSTree, 404},
                      FuzzParam{IndexType::kRStarTree, 404},
                      FuzzParam{IndexType::kKdbTree, 404},
                      FuzzParam{IndexType::kXTree, 404},
                      FuzzParam{IndexType::kTvTree, 404}),
    ParamName);

}  // namespace
}  // namespace srtree
