#include "src/benchlib/experiment.h"

#include <gtest/gtest.h>

#include "src/benchlib/options.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(ExperimentTest, FactoryProducesEveryIndexType) {
  IndexConfig config;
  config.dim = 4;
  for (const IndexType type : AllTreeTypes()) {
    auto index = MakeIndex(type, config);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->name(), IndexTypeName(type));
    EXPECT_EQ(index->dim(), 4);
    EXPECT_EQ(index->size(), 0u);
  }
  EXPECT_EQ(MakeIndex(IndexType::kScan, config)->name(), "scan");
}

TEST(ExperimentTest, TypeListsMatchThePaper) {
  EXPECT_EQ(AllTreeTypes().size(), 5u);
  EXPECT_EQ(DynamicTreeTypes().size(), 3u);
}

TEST(ExperimentTest, BuildMetricsAreConsistent) {
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(IndexType::kSRTree, config);
  const Dataset data = MakeUniformDataset(500, 4, /*seed=*/71);
  const IoStats before = index->GetIoStats();
  const BuildMetrics metrics = BuildIndexFromDataset(*index, data);
  EXPECT_EQ(index->size(), 500u);
  EXPECT_GT(metrics.disk_accesses, 500u);  // at least one write per insert
  EXPECT_GE(metrics.total_cpu_seconds, 0.0);
  EXPECT_NEAR(metrics.accesses_per_insert,
              static_cast<double>(metrics.disk_accesses) / 500.0, 1e-9);
  // The builder measures by snapshot deltas and leaves the global counters
  // untouched, so the build cost is still visible on the index afterwards.
  EXPECT_EQ(index->GetIoStats().accesses() - before.accesses(),
            metrics.disk_accesses);
}

TEST(ExperimentTest, QueryMetricsAreConsistent) {
  IndexConfig config;
  config.dim = 4;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(IndexType::kSRTree, config);
  const Dataset data = MakeUniformDataset(800, 4, /*seed=*/73);
  BuildIndexFromDataset(*index, data);

  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 25, /*seed=*/79);
  const IoStats before = index->GetIoStats();
  const QueryMetrics metrics = RunKnnWorkload(*index, queries, 5);
  EXPECT_EQ(metrics.num_queries, 25u);
  // The workload measures through per-query deltas; the same reads also
  // land in the global counters (accounting parity), which it no longer
  // resets behind the caller's back.
  EXPECT_NEAR(static_cast<double>(index->GetIoStats().reads - before.reads),
              metrics.disk_reads * 25.0, 1e-9);
  EXPECT_GT(metrics.disk_reads, 0.0);
  EXPECT_GT(metrics.leaf_reads, 0.0);
  EXPECT_GT(metrics.nonleaf_reads, 0.0);
  EXPECT_NEAR(metrics.leaf_reads + metrics.nonleaf_reads, metrics.disk_reads,
              1e-9);
  EXPECT_GE(metrics.cpu_ms, 0.0);
}

TEST(BenchOptionsTest, LaddersAndQueryCounts) {
  FlagParser parser;
  AddBenchFlags(parser);
  std::vector<std::string> storage = {"prog"};
  std::vector<char*> argv = {storage[0].data()};
  ASSERT_TRUE(parser.Parse(1, argv.data()).ok());
  BenchOptions options = GetBenchOptions(parser);
  EXPECT_FALSE(options.full);
  EXPECT_EQ(options.k, 21);
  EXPECT_EQ(QueryCount(options), 100u);
  EXPECT_EQ(UniformSizeLadder(options).back(), 20000);

  options.full = true;
  EXPECT_EQ(QueryCount(options), 1000u);
  EXPECT_EQ(UniformSizeLadder(options).back(), 100000);
  EXPECT_EQ(RealSizeLadder(options).back(), 20000);

  options.sizes = {5, 6};
  EXPECT_EQ(UniformSizeLadder(options).size(), 2u);
}

}  // namespace
}  // namespace srtree
