#include "src/xtree/x_tree.h"

#include <gtest/gtest.h>

#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(XTreeTest, PaperFanouts) {
  XTree::Options options;
  options.dim = 16;
  XTree tree(options);
  // Same per-page layout as the R*-tree; supernodes multiply it.
  EXPECT_EQ(tree.node_capacity(), 31u);
  EXPECT_EQ(tree.leaf_capacity(), 12u);
  EXPECT_EQ(tree.name(), "X-tree");
}

TEST(XTreeTest, LowDimensionalDataNeedsNoSupernodes) {
  // In 2-d, topological splits rarely exceed the overlap threshold, so the
  // X-tree degenerates to an R-tree: no supernodes.
  XTree::Options options;
  options.dim = 2;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  XTree tree(options);
  const Dataset data = MakeUniformDataset(2000, 2, /*seed=*/71);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  const XTree::SupernodeStats stats = tree.GetSupernodeStats();
  EXPECT_EQ(stats.supernodes, 0u);
  EXPECT_EQ(tree.supernode_extensions(), 0u);
}

TEST(XTreeTest, HighDimensionalDataCreatesSupernodes) {
  // In 16-d uniform data, directory splits overlap heavily, so the X-tree
  // must fall back to supernodes (the behavior Berchtold et al. designed
  // it for).
  XTree::Options options;
  options.dim = 16;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  XTree tree(options);
  const Dataset data = MakeUniformDataset(4000, 16, /*seed=*/73);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.supernode_extensions(), 0u);
  const XTree::SupernodeStats stats = tree.GetSupernodeStats();
  EXPECT_GT(stats.supernodes, 0u);
  EXPECT_GT(stats.supernode_pages, stats.supernodes);  // > 1 page each
}

TEST(XTreeTest, SupernodeReadsCostOnePerPage) {
  XTree::Options options;
  options.dim = 16;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  XTree tree(options);
  const Dataset data = MakeUniformDataset(4000, 16, /*seed=*/73);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const TreeStats stats = tree.GetTreeStats();
  const QueryResult result = tree.Search(data.point(0), QuerySpec::Knn(1));
  // Reading the root supernode alone may already cost several reads; the
  // total must be at least the tree height and is bounded by the page
  // population.
  EXPECT_GE(result.io.reads, static_cast<uint64_t>(tree.height()));
  EXPECT_LE(result.io.reads, stats.node_count + stats.leaf_count);
}

TEST(XTreeTest, DeleteShrinksSupernodes) {
  XTree::Options options;
  options.dim = 16;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  XTree tree(options);
  const Dataset data = MakeUniformDataset(3000, 16, /*seed=*/79);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const Status status = tree.CheckInvariants();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(tree.size(), data.size() / 2);
}

TEST(XTreeTest, RejectsWrongDimensionality) {
  XTree::Options options;
  options.dim = 3;
  XTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{1.0}, 0).IsInvalidArgument());
}

}  // namespace
}  // namespace srtree
