#include "src/index/region_stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(RegionStatsTest, EmptySummary) {
  RegionStatsCollector collector;
  const RegionSummary summary = collector.Finish();
  EXPECT_EQ(summary.leaf_count, 0u);
  EXPECT_FALSE(summary.has_spheres);
  EXPECT_FALSE(summary.has_rects);
}

TEST(RegionStatsTest, AveragesSpheres) {
  RegionStatsCollector collector;
  collector.CountLeaf();
  collector.AddSphere(Sphere(Point{0.0, 0.0}, 1.0));
  collector.CountLeaf();
  collector.AddSphere(Sphere(Point{5.0, 5.0}, 3.0));
  const RegionSummary summary = collector.Finish();
  EXPECT_EQ(summary.leaf_count, 2u);
  EXPECT_TRUE(summary.has_spheres);
  EXPECT_FALSE(summary.has_rects);
  EXPECT_DOUBLE_EQ(summary.avg_sphere_diameter, (2.0 + 6.0) / 2.0);
  EXPECT_NEAR(summary.avg_sphere_volume, (M_PI * 1.0 + M_PI * 9.0) / 2.0,
              1e-12);
}

TEST(RegionStatsTest, AveragesRects) {
  RegionStatsCollector collector;
  collector.CountLeaf();
  collector.AddRect(Rect(Point{0.0, 0.0}, Point{2.0, 2.0}));
  collector.CountLeaf();
  collector.AddRect(Rect(Point{0.0, 0.0}, Point{4.0, 1.0}));
  const RegionSummary summary = collector.Finish();
  EXPECT_TRUE(summary.has_rects);
  EXPECT_DOUBLE_EQ(summary.avg_rect_volume, (4.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(summary.avg_rect_diagonal,
                   (std::sqrt(8.0) + std::sqrt(17.0)) / 2.0);
}

TEST(RegionStatsTest, MixedShapesForSrTreeStyleRegions) {
  RegionStatsCollector collector;
  collector.CountLeaf();
  collector.AddSphere(Sphere(Point{0.0, 0.0}, 2.0));
  collector.AddRect(Rect(Point{-1.0, -1.0}, Point{1.0, 1.0}));
  const RegionSummary summary = collector.Finish();
  EXPECT_EQ(summary.leaf_count, 1u);
  EXPECT_TRUE(summary.has_spheres);
  EXPECT_TRUE(summary.has_rects);
}

}  // namespace
}  // namespace srtree
