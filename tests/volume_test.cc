#include "src/geometry/volume.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

namespace srtree {
namespace {

TEST(VolumeTest, LowDimensionalClosedForms) {
  EXPECT_NEAR(UnitBallVolume(1), 2.0, 1e-12);             // segment [-1,1]
  EXPECT_NEAR(UnitBallVolume(2), M_PI, 1e-12);            // disk
  EXPECT_NEAR(UnitBallVolume(3), 4.0 / 3.0 * M_PI, 1e-12);
}

TEST(VolumeTest, RadiusScaling) {
  EXPECT_NEAR(BallVolume(2, 2.0), 4.0 * M_PI, 1e-12);
  EXPECT_NEAR(BallVolume(3, 0.5), UnitBallVolume(3) / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(BallVolume(5, 0.0), 0.0);
}

TEST(VolumeTest, UnitBallVolumeVanishesInHighDimensions) {
  // The Section 3 effect: the unit ball volume peaks near D=5 then decays
  // super-exponentially.
  EXPECT_GT(UnitBallVolume(5), UnitBallVolume(2));
  EXPECT_LT(UnitBallVolume(16), UnitBallVolume(5));
  EXPECT_LT(UnitBallVolume(64), 1e-13);
  EXPECT_GT(UnitBallVolume(64), 0.0);
}

TEST(VolumeTest, LogVolumeIsFiniteWhereVolumeUnderflows) {
  // At D=500, r=0.1 the plain volume underflows but the log stays finite.
  const double log_v = LogBallVolume(500, 0.1);
  EXPECT_TRUE(std::isfinite(log_v));
  EXPECT_LT(log_v, 0.0);
}

TEST(VolumeTest, SphereVsEnclosingCube) {
  // A ball of radius r fits in a cube of edge 2r; the volume ratio
  // (pi/4)^{D/2}-ish shrinks with D — the paper's sphere/rectangle story.
  for (const int dim : {2, 8, 16}) {
    const double ball = BallVolume(dim, 1.0);
    const double cube = std::pow(2.0, dim);
    EXPECT_LT(ball, cube);
  }
  const double ratio16 = BallVolume(16, 1.0) / std::pow(2.0, 16);
  const double ratio2 = BallVolume(2, 1.0) / std::pow(2.0, 2);
  EXPECT_LT(ratio16, ratio2 * 1e-3);
}

TEST(VolumeTest, SphereVolumeMatchesGeometrySphere) {
  const Sphere s(Point{0.0, 0.0, 0.0}, 2.0);
  EXPECT_NEAR(s.Volume(), BallVolume(3, 2.0), 1e-12);
}

}  // namespace
}  // namespace srtree
