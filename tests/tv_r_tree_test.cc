#include "src/tvtree/tv_r_tree.h"

#include <gtest/gtest.h>

#include "src/index/brute_force.h"
#include "src/rstar/rstar_tree.h"
#include "src/workload/histogram.h"
#include "src/workload/uniform.h"
#include "src/workload/queries.h"

namespace srtree {
namespace {

TEST(TvRTreeTest, ActiveDimensionDefaultsAndFanout) {
  TvRTree::Options options;
  options.dim = 16;
  TvRTree tree(options);
  EXPECT_EQ(tree.active_dims(), 8);  // min(8, dim)
  // Directory entries cover only 8 of the 16 dimensions, so the fanout
  // roughly doubles the R*-tree's 31 — the TV-tree's claimed advantage.
  EXPECT_EQ(tree.node_capacity(), 62u);  // (8192-8) / (2*8*8 + 4)
  EXPECT_EQ(tree.leaf_capacity(), 12u);  // leaves store full vectors
  EXPECT_EQ(tree.name(), "TV-tree");
}

TEST(TvRTreeTest, ExplicitActiveDims) {
  TvRTree::Options options;
  options.dim = 16;
  options.active_dims = 4;
  TvRTree tree(options);
  EXPECT_EQ(tree.active_dims(), 4);
  EXPECT_EQ(tree.node_capacity(), 120u);  // (8192-8) / (2*4*8 + 4)
}

TEST(TvRTreeTest, FullActiveDimsBehavesLikeRStar) {
  // With active_dims == dim the TV-tree and R*-tree are the same
  // algorithm; their query answers and tree shapes must coincide.
  TvRTree::Options tv_options;
  tv_options.dim = 4;
  tv_options.active_dims = 4;
  tv_options.page_size = 1024;
  tv_options.leaf_data_size = 0;
  TvRTree tv(tv_options);

  RStarTree::Options rs_options;
  rs_options.dim = 4;
  rs_options.page_size = 1024;
  rs_options.leaf_data_size = 0;
  RStarTree rstar(rs_options);

  const Dataset data = MakeUniformDataset(1000, 4, /*seed=*/89);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tv.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(rstar.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_EQ(tv.height(), rstar.height());
  EXPECT_EQ(tv.GetTreeStats().leaf_count, rstar.GetTreeStats().leaf_count);
  for (const Point& q : SampleQueriesFromDataset(data, 10, /*seed=*/91)) {
    const auto a = tv.Search(q, QuerySpec::Knn(5)).neighbors;
    const auto b = rstar.Search(q, QuerySpec::Knn(5)).neighbors;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].oid, b[i].oid);
  }
}

TEST(TvRTreeTest, ReducedDimensionsStayExact) {
  // Even when only 4 of 16 dimensions are indexed, results must match
  // brute force: the active-subspace MINDIST is a valid lower bound.
  TvRTree::Options options;
  options.dim = 16;
  options.active_dims = 4;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  TvRTree tree(options);

  BruteForceIndex::Options ref_options;
  ref_options.dim = 16;
  BruteForceIndex reference(ref_options);

  HistogramConfig config;
  config.n = 800;
  config.dim = 16;
  config.seed = 93;
  const Dataset data = MakeHistogramDataset(config);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
    ASSERT_TRUE(
        reference.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (const Point& q : SampleQueriesFromDataset(data, 10, /*seed=*/97)) {
    const auto actual = tree.Search(q, QuerySpec::Knn(10)).neighbors;
    const auto expected = reference.Search(q, QuerySpec::Knn(10)).neighbors;
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].oid, expected[i].oid);
    }
  }
}

TEST(TvRTreeTest, RejectsActiveDimsAboveDim) {
  TvRTree::Options options;
  options.dim = 4;
  options.active_dims = 8;
  EXPECT_DEATH(TvRTree tree(options), "CHECK failed");
}

}  // namespace
}  // namespace srtree
