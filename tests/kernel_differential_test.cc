// Differential tests for the DistanceKernel implementations.
//
// Four layers of checking:
//  1. Accuracy: every available implementation against a long-double
//     reference, across dimensionalities that straddle the SIMD lane and
//     chunk boundaries and across adversarial input classes (subnormal
//     products, large magnitudes, duplicate coordinates).
//  2. Bit-exactness: every SIMD implementation must agree with scalar
//     BIT-FOR-BIT on the unbounded primitives — the kernels vectorize
//     across block elements, never across dimensions, precisely so that
//     this holds (see src/geometry/kernel.h).
//  3. The bounded (partial-distance-pruning) contract: out[i] is exact
//     whenever the true distance is within the bound, and the predicate
//     out[i] > bound_sq always agrees with the exact distance — on every
//     implementation, for every bound.
//  4. End to end: toggling partial-distance pruning leaves the results of
//     every index type's kNN / best-first / range search unchanged.

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/kernel.h"
#include "src/geometry/point.h"
#include "src/index/index_factory.h"

namespace srtree {
namespace {

// Dimensionalities chosen to straddle the AVX2 (4-lane) and AVX-512
// (8-lane) block widths and the bounded kernel's check-chunk length.
const int kDims[] = {1,  2,  3,  4,  5,  7,  8,  9,  15, 16, 17,
                     31, 32, 33, 48, 63, 64, 65, 100, 128, 256};
constexpr size_t kCount = 37;  // not a lane multiple: exercises tails

enum class InputClass { kRandom, kSubnormal, kLargeMagnitude, kDuplicate };

const InputClass kInputClasses[] = {
    InputClass::kRandom, InputClass::kSubnormal, InputClass::kLargeMagnitude,
    InputClass::kDuplicate};

const char* InputClassName(InputClass c) {
  switch (c) {
    case InputClass::kRandom: return "random";
    case InputClass::kSubnormal: return "subnormal";
    case InputClass::kLargeMagnitude: return "large-magnitude";
    case InputClass::kDuplicate: return "duplicate-coordinate";
  }
  return "?";
}

double Coord(InputClass c, Xoshiro256& rng) {
  switch (c) {
    case InputClass::kRandom:
      return rng.NextDouble() * 2.0 - 1.0;
    case InputClass::kSubnormal:
      // Coordinates ~1e-160 are normal but their squares (~1e-320) are
      // subnormal, exercising gradual underflow in the accumulation.
      return (rng.NextDouble() * 2.0 - 1.0) * 1e-160;
    case InputClass::kLargeMagnitude:
      // Squares near 1e300; even a 256-dim sum stays finite.
      return (rng.NextDouble() * 2.0 - 1.0) * 1e150;
    case InputClass::kDuplicate:
      // Few distinct values: many exact-zero per-dimension differences and
      // many exactly-tied block elements.
      return static_cast<double>(static_cast<int>(rng.NextDouble() * 3.0));
  }
  return 0.0;
}

Point MakePoint(InputClass c, int dim, Xoshiro256& rng) {
  Point p(static_cast<size_t>(dim));
  for (double& v : p) v = Coord(c, rng);
  return p;
}

// Long-double references, accumulated in the same ascending-dimension
// order the kernels use.
long double RefSquaredL2(PointView a, PointView b) {
  long double sum = 0.0L;
  for (size_t d = 0; d < a.size(); ++d) {
    const long double diff =
        static_cast<long double>(a[d]) - static_cast<long double>(b[d]);
    sum += diff * diff;
  }
  return sum;
}

long double RefMinDistSqRect(PointView q, PointView lo, PointView hi) {
  long double sum = 0.0L;
  for (size_t d = 0; d < q.size(); ++d) {
    long double delta = 0.0L;
    if (q[d] < lo[d]) delta = static_cast<long double>(lo[d]) - q[d];
    if (q[d] > hi[d]) delta = static_cast<long double>(q[d]) - hi[d];
    sum += delta * delta;
  }
  return sum;
}

// Tolerance for a dim-term double sum vs the long-double reference: each of
// the ~dim roundings contributes at most one ulp of relative error, plus
// half an ulp of absolute error per term when the intermediate products are
// subnormal (gradual underflow).
double SumTolerance(int dim, long double ref) {
  const double rel = static_cast<double>(dim + 4) * DBL_EPSILON;
  const double subnormal_slack =
      static_cast<double>(dim + 4) * 4.9406564584124654e-324;
  return rel * static_cast<double>(ref) + subnormal_slack;
}

// Tolerance for sphere MINDIST (distance space). The error in the squared
// sum propagates through sqrt as e / (2 sqrt(s)) for normal sums but as up
// to sqrt(e) when the sum itself underflows, and the final subtraction
// contributes one ulp of the distance magnitude.
double SphereTolerance(int dim, long double ref_dist, double radius) {
  const double scale =
      static_cast<double>(ref_dist) + std::fabs(radius) + DBL_MIN;
  const double rel = static_cast<double>(dim + 8) * DBL_EPSILON * scale;
  const double underflow_slack = std::sqrt(
      static_cast<double>(dim + 8) * 4.9406564584124654e-324);
  return rel + underflow_slack;
}

struct Blocks {
  Point query;
  SoaBuffer points;  // also sphere centers / rect lows
  SoaBuffer highs;
  std::vector<double> radii;
  std::vector<Point> aos_lo, aos_hi;  // AoS copies for the references
};

Blocks MakeBlocks(InputClass c, int dim, uint64_t seed) {
  Xoshiro256 rng(seed);
  Blocks b;
  b.query = MakePoint(c, dim, rng);
  b.points.Reset(dim, kCount);
  b.highs.Reset(dim, kCount);
  b.radii.resize(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    Point lo = MakePoint(c, dim, rng);
    Point hi = lo;
    for (int d = 0; d < dim; ++d) {
      const double other = Coord(c, rng);
      const size_t ud = static_cast<size_t>(d);
      lo[ud] = std::min(lo[ud], other);
      hi[ud] = std::max(hi[ud], other);
    }
    if (c == InputClass::kDuplicate && i % 5 == 0) {
      // Zero-distance elements: the query itself as point / rect / center.
      lo = b.query;
      hi = b.query;
    }
    b.points.SetElement(i, lo);
    b.highs.SetElement(i, hi);
    b.radii[i] = std::fabs(Coord(c, rng));
    b.aos_lo.push_back(std::move(lo));
    b.aos_hi.push_back(std::move(hi));
  }
  return b;
}

std::string CaseLabel(InputClass c, int dim, const DistanceKernel& kernel) {
  return std::string(InputClassName(c)) + " dim=" + std::to_string(dim) +
         " impl=" + kernel.name();
}

TEST(KernelDifferentialTest, MatchesLongDoubleReference) {
  for (const InputClass c : kInputClasses) {
    for (const int dim : kDims) {
      const Blocks b = MakeBlocks(c, dim, 1000 + static_cast<uint64_t>(dim));
      for (const KernelImpl impl : AvailableKernelImpls()) {
        const DistanceKernel* kernel = GetDistanceKernelFor(impl);
        ASSERT_NE(kernel, nullptr);
        const std::string label = CaseLabel(c, dim, *kernel);
        std::vector<double> out(kCount);

        kernel->SquaredL2ToMany(b.query, b.points.block(), out.data());
        for (size_t i = 0; i < kCount; ++i) {
          const long double ref = RefSquaredL2(b.query, b.aos_lo[i]);
          EXPECT_NEAR(out[i], static_cast<double>(ref),
                      SumTolerance(dim, ref))
              << label << " squared_l2 i=" << i;
        }

        kernel->MinDistRectToMany(b.query, b.points.block(), b.highs.block(),
                                  out.data());
        for (size_t i = 0; i < kCount; ++i) {
          const long double ref =
              RefMinDistSqRect(b.query, b.aos_lo[i], b.aos_hi[i]);
          EXPECT_NEAR(out[i], static_cast<double>(ref),
                      SumTolerance(dim, ref))
              << label << " rect_mindist i=" << i;
        }

        kernel->SphereMinDistToMany(b.query, b.points.block(),
                                    b.radii.data(), out.data());
        for (size_t i = 0; i < kCount; ++i) {
          const long double dist = sqrtl(RefSquaredL2(b.query, b.aos_lo[i]));
          const long double md = dist - static_cast<long double>(b.radii[i]);
          const long double ref = md > 0.0L ? md : 0.0L;
          EXPECT_NEAR(out[i], static_cast<double>(ref),
                      SphereTolerance(dim, dist, b.radii[i]))
              << label << " sphere_mindist i=" << i;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, SimdBitIdenticalToScalar) {
  const DistanceKernel* scalar = GetDistanceKernelFor(KernelImpl::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (const InputClass c : kInputClasses) {
    for (const int dim : kDims) {
      const Blocks b = MakeBlocks(c, dim, 2000 + static_cast<uint64_t>(dim));
      std::vector<double> want(kCount), got(kCount);
      for (const KernelImpl impl : AvailableKernelImpls()) {
        if (impl == KernelImpl::kScalar) continue;
        const DistanceKernel* kernel = GetDistanceKernelFor(impl);
        ASSERT_NE(kernel, nullptr);
        const std::string label = CaseLabel(c, dim, *kernel);

        scalar->SquaredL2ToMany(b.query, b.points.block(), want.data());
        kernel->SquaredL2ToMany(b.query, b.points.block(), got.data());
        for (size_t i = 0; i < kCount; ++i) {
          EXPECT_EQ(want[i], got[i]) << label << " squared_l2 i=" << i;
        }

        scalar->MinDistRectToMany(b.query, b.points.block(), b.highs.block(),
                                  want.data());
        kernel->MinDistRectToMany(b.query, b.points.block(), b.highs.block(),
                                  got.data());
        for (size_t i = 0; i < kCount; ++i) {
          EXPECT_EQ(want[i], got[i]) << label << " rect_mindist i=" << i;
        }

        scalar->SphereMinDistToMany(b.query, b.points.block(),
                                    b.radii.data(), want.data());
        kernel->SphereMinDistToMany(b.query, b.points.block(),
                                    b.radii.data(), got.data());
        for (size_t i = 0; i < kCount; ++i) {
          EXPECT_EQ(want[i], got[i]) << label << " sphere_mindist i=" << i;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, BoundedContractHoldsOnEveryImplementation) {
  for (const InputClass c : kInputClasses) {
    for (const int dim : kDims) {
      const Blocks b = MakeBlocks(c, dim, 3000 + static_cast<uint64_t>(dim));
      // Exact distances, for the contract's right-hand side. Any
      // implementation works: the unbounded op is bit-identical everywhere.
      std::vector<double> exact(kCount);
      GetDistanceKernel().SquaredL2ToMany(b.query, b.points.block(),
                                          exact.data());
      // Bounds from strict to permissive, including both extremes and
      // bounds that land exactly on block distances (ties must stay exact).
      std::vector<double> bounds = {0.0,
                                    std::numeric_limits<double>::infinity()};
      for (size_t i = 0; i < kCount; i += 7) bounds.push_back(exact[i]);
      for (const KernelImpl impl : AvailableKernelImpls()) {
        const DistanceKernel* kernel = GetDistanceKernelFor(impl);
        ASSERT_NE(kernel, nullptr);
        std::vector<double> out(kCount);
        for (const double bound : bounds) {
          kernel->SquaredL2ToManyBounded(b.query, b.points.block(), bound,
                                         out.data());
          for (size_t i = 0; i < kCount; ++i) {
            const std::string label =
                CaseLabel(c, dim, *kernel) + " bound=" +
                std::to_string(bound) + " i=" + std::to_string(i);
            if (exact[i] <= bound) {
              // The partial sums are monotone, so none can exceed the
              // bound and the result must be the full exact distance.
              EXPECT_EQ(out[i], exact[i]) << label;
            } else {
              // Beyond the bound only the predicate is promised.
              EXPECT_GT(out[i], bound) << label;
            }
          }
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, DisablingPruningYieldsExactDistances) {
  const Blocks b = MakeBlocks(InputClass::kRandom, 32, 4321);
  std::vector<double> exact(kCount), out(kCount);
  const DistanceKernel& kernel = GetDistanceKernel();
  kernel.SquaredL2ToMany(b.query, b.points.block(), exact.data());
  const bool prev = SetPartialDistancePruning(false);
  // With pruning off even the tightest bound must yield full distances.
  kernel.SquaredL2ToManyBounded(b.query, b.points.block(), 0.0, out.data());
  SetPartialDistancePruning(prev);
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(out[i], exact[i]) << i;
}

TEST(KernelDifferentialTest, SinglePointFormsMatchBatchedForms) {
  for (const int dim : {1, 3, 16, 64}) {
    const Blocks b = MakeBlocks(InputClass::kRandom, dim,
                                5000 + static_cast<uint64_t>(dim));
    const DistanceKernel& kernel = GetDistanceKernel();
    std::vector<double> d2(kCount), m2(kCount), md(kCount);
    kernel.SquaredL2ToMany(b.query, b.points.block(), d2.data());
    kernel.MinDistRectToMany(b.query, b.points.block(), b.highs.block(),
                             m2.data());
    kernel.SphereMinDistToMany(b.query, b.points.block(), b.radii.data(),
                               md.data());
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(kernel.SquaredL2(b.query, b.aos_lo[i]), d2[i]) << i;
      EXPECT_EQ(kernel.L2(b.query, b.aos_lo[i]), std::sqrt(d2[i])) << i;
      const Rect rect(b.aos_lo[i], b.aos_hi[i]);
      EXPECT_EQ(kernel.MinDistSqToRect(b.query, rect), m2[i]) << i;
      const Sphere sphere(b.aos_lo[i], b.radii[i]);
      EXPECT_EQ(kernel.MinDistToSphere(b.query, sphere), md[i]) << i;
    }
  }
}

// Toggling partial-distance pruning must not change any search result on
// any index type: pruning only ever truncates distances that are already
// provably beyond the candidate bound.
TEST(KernelDifferentialTest, PruningTogglePreservesSearchResults) {
  constexpr int kDim = 16;
  constexpr size_t kNumPoints = 300;
  Xoshiro256 rng(97531);
  std::vector<Point> points;
  points.reserve(kNumPoints);
  for (size_t i = 0; i < kNumPoints; ++i) {
    points.push_back(MakePoint(InputClass::kRandom, kDim, rng));
  }
  std::vector<uint32_t> oids(kNumPoints);
  for (size_t i = 0; i < kNumPoints; ++i) {
    oids[i] = static_cast<uint32_t>(i * 3 + 1);
  }
  const std::vector<Point> queries = {
      MakePoint(InputClass::kRandom, kDim, rng),
      MakePoint(InputClass::kRandom, kDim, rng), points[17]};

  IndexConfig config;
  config.dim = kDim;
  std::vector<IndexType> types = AllTreeTypes();
  types.push_back(IndexType::kXTree);
  types.push_back(IndexType::kTvTree);
  types.push_back(IndexType::kScan);
  for (const IndexType type : types) {
    std::unique_ptr<PointIndex> index = MakeIndex(type, config);
    ASSERT_TRUE(index->BulkLoad(points, oids).ok()) << IndexTypeName(type);
    for (const Point& query : queries) {
      for (const QuerySpec& spec :
           {QuerySpec::Knn(10), QuerySpec::KnnBestFirst(10),
            QuerySpec::Range(1.2)}) {
        SetPartialDistancePruning(true);
        const QueryResult with = index->Search(query, spec);
        SetPartialDistancePruning(false);
        const QueryResult without = index->Search(query, spec);
        SetPartialDistancePruning(true);
        ASSERT_TRUE(with.status.ok()) << IndexTypeName(type);
        ASSERT_TRUE(without.status.ok()) << IndexTypeName(type);
        ASSERT_EQ(with.neighbors.size(), without.neighbors.size())
            << IndexTypeName(type);
        for (size_t i = 0; i < with.neighbors.size(); ++i) {
          EXPECT_EQ(with.neighbors[i].oid, without.neighbors[i].oid)
              << IndexTypeName(type) << " result " << i;
          EXPECT_EQ(with.neighbors[i].distance, without.neighbors[i].distance)
              << IndexTypeName(type) << " result " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace srtree
