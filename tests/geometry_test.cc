#include <cmath>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sphere.h"

// The free-function wrappers in point.h are deprecated in favor of the
// DistanceKernel API; these tests deliberately keep exercising them.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace srtree {
namespace {

TEST(PointTest, Distances) {
  const Point a = {0.0, 0.0};
  const Point b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(RectTest, EmptyAndExpand) {
  Rect r = Rect::Empty(2);
  EXPECT_TRUE(r.IsEmpty());
  r.Expand(Point{1.0, 2.0});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point{1.0, 2.0}));
  r.Expand(Point{-1.0, 5.0});
  EXPECT_DOUBLE_EQ(r.lo()[0], -1.0);
  EXPECT_DOUBLE_EQ(r.hi()[1], 5.0);
  EXPECT_TRUE(r.Contains(Point{0.0, 3.0}));
  EXPECT_FALSE(r.Contains(Point{2.0, 3.0}));
}

TEST(RectTest, UnionAndContainsRect) {
  const Rect a(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Rect b(Point{2.0, -1.0}, Point{3.0, 0.5});
  const Rect u = Rect::Union(a, b);
  EXPECT_TRUE(u.ContainsRect(a));
  EXPECT_TRUE(u.ContainsRect(b));
  EXPECT_DOUBLE_EQ(u.lo()[1], -1.0);
  EXPECT_DOUBLE_EQ(u.hi()[0], 3.0);
  EXPECT_FALSE(a.ContainsRect(u));
}

TEST(RectTest, Intersects) {
  const Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const Rect b(Point{1.0, 1.0}, Point{3.0, 3.0});
  const Rect c(Point{2.5, 2.5}, Point{4.0, 4.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges intersect.
  const Rect d(Point{2.0, 0.0}, Point{3.0, 2.0});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, MinDist) {
  const Rect r(Point{0.0, 0.0}, Point{2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.MinDistSq(Point{1.0, 1.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.MinDistSq(Point{2.0, 2.0}), 0.0);   // corner
  EXPECT_DOUBLE_EQ(r.MinDistSq(Point{3.0, 1.0}), 1.0);   // right face
  EXPECT_DOUBLE_EQ(r.MinDistSq(Point{3.0, 3.0}), 2.0);   // corner diagonal
  EXPECT_DOUBLE_EQ(r.MinDistSq(Point{-2.0, -2.0}), 8.0);
}

TEST(RectTest, MaxDistIsFarthestVertex) {
  const Rect r(Point{0.0, 0.0}, Point{2.0, 4.0});
  // From the origin corner, the farthest vertex is (2,4).
  EXPECT_DOUBLE_EQ(r.MaxDistSq(Point{0.0, 0.0}), 20.0);
  // From the center, each dimension contributes half the edge.
  EXPECT_DOUBLE_EQ(r.MaxDistSq(Point{1.0, 2.0}), 1.0 + 4.0);
  // From outside, beyond hi: farthest is lo.
  EXPECT_DOUBLE_EQ(r.MaxDistSq(Point{3.0, 5.0}), 9.0 + 25.0);
}

TEST(RectTest, VolumeMarginDiagonal) {
  const Rect r(Point{0.0, 0.0, 0.0}, Point{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 6.0);
  EXPECT_DOUBLE_EQ(r.Diagonal(), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(Rect::FromPoint(Point{1.0, 1.0}).Volume(), 0.0);
}

TEST(RectTest, UnitCubeDiagonalGrowsAsSqrtD) {
  // The Section 3.2 observation: edge 1, diagonal sqrt(D).
  for (const int dim : {2, 16, 64}) {
    const Rect cube(Point(dim, 0.0), Point(dim, 1.0));
    EXPECT_DOUBLE_EQ(cube.Diagonal(), std::sqrt(static_cast<double>(dim)));
    EXPECT_DOUBLE_EQ(cube.Volume(), 1.0);
  }
}

TEST(RectTest, OverlapVolume) {
  const Rect a(Point{0.0, 0.0}, Point{2.0, 2.0});
  const Rect b(Point{1.0, 1.0}, Point{3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(b.OverlapVolume(a), 1.0);
  const Rect c(Point{5.0, 5.0}, Point{6.0, 6.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
  // Touching rectangles overlap with zero volume.
  const Rect d(Point{2.0, 0.0}, Point{4.0, 2.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(d), 0.0);
}

TEST(RectTest, CenterIsMidpoint) {
  const Rect r(Point{0.0, -2.0}, Point{4.0, 2.0});
  const Point c = r.Center();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(SphereTest, ContainsAndMinMaxDist) {
  const Sphere s(Point{0.0, 0.0}, 2.0);
  EXPECT_TRUE(s.Contains(Point{1.0, 1.0}));
  EXPECT_TRUE(s.Contains(Point{2.0, 0.0}));  // boundary
  EXPECT_FALSE(s.Contains(Point{2.0, 1.0}));
  EXPECT_DOUBLE_EQ(s.MinDist(Point{1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.MinDist(Point{5.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.MaxDist(Point{5.0, 0.0}), 7.0);
  EXPECT_DOUBLE_EQ(s.Diameter(), 4.0);
}

TEST(SphereTest, IntersectsRect) {
  const Sphere s(Point{0.0, 0.0}, 1.0);
  EXPECT_TRUE(s.IntersectsRect(Rect(Point{0.5, 0.5}, Point{2.0, 2.0})));
  EXPECT_TRUE(s.IntersectsRect(Rect(Point{1.0, 0.0}, Point{2.0, 1.0})));
  // Corner at (1,1): distance sqrt(2) > 1 — no intersection.
  EXPECT_FALSE(s.IntersectsRect(Rect(Point{1.0, 1.0}, Point{2.0, 2.0})));
}

// Property: MINDIST lower-bounds and MAXDIST upper-bounds the distance to
// any point inside the rectangle (the Roussopoulos pruning soundness).
TEST(GeometryPropertyTest, RectMinMaxDistBracketContainedPoints) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(8));
    Point lo(dim), hi(dim), q(dim), inside(dim);
    for (int d = 0; d < dim; ++d) {
      const double a = rng.Uniform(-5.0, 5.0);
      const double b = rng.Uniform(-5.0, 5.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      q[d] = rng.Uniform(-10.0, 10.0);
      inside[d] = rng.Uniform(lo[d], hi[d]);
    }
    const Rect rect(lo, hi);
    const double dist_sq = SquaredDistance(q, inside);
    EXPECT_LE(rect.MinDistSq(q), dist_sq + 1e-12);
    EXPECT_GE(rect.MaxDistSq(q), dist_sq - 1e-12);
  }
}

TEST(GeometryPropertyTest, SphereMinDistLowerBoundsContainedPoints) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(8));
    Point center(dim), q(dim);
    for (int d = 0; d < dim; ++d) {
      center[d] = rng.Uniform(-5.0, 5.0);
      q[d] = rng.Uniform(-10.0, 10.0);
    }
    const double radius = rng.Uniform(0.1, 3.0);
    const Sphere sphere(center, radius);
    // A point inside the ball.
    const std::vector<double> dir = rng.OnUnitSphere(dim);
    const double scale = radius * rng.NextDouble();
    Point inside(dim);
    for (int d = 0; d < dim; ++d) inside[d] = center[d] + scale * dir[d];
    EXPECT_LE(sphere.MinDist(q), Distance(q, inside) + 1e-9);
  }
}

}  // namespace
}  // namespace srtree
