#include "src/storage/buffer_pool.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(BufferPoolTest, HitsAvoidDiskReads) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> data(64, 'a');
  file.Write(a, data.data());
  file.stats().Reset();

  BufferPool pool(&file, 4);
  std::vector<char> out(64);
  pool.Read(a, out.data());
  pool.Read(a, out.data());
  pool.Read(a, out.data());
  EXPECT_EQ(file.stats().reads, 1u);  // only the first miss hit the disk
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  file.stats().Reset();

  BufferPool pool(&file, 2);
  std::vector<char> data(64, 'x');
  pool.Write(a, data.data());
  EXPECT_EQ(file.stats().writes, 0u);  // buffered, not yet on disk

  std::vector<char> out(64);
  pool.Read(b, out.data());
  pool.Read(c, out.data());  // evicts a (LRU), forcing the writeback
  EXPECT_EQ(file.stats().writes, 1u);

  std::vector<char> check(64);
  file.Read(a, check.data());
  EXPECT_EQ(std::memcmp(check.data(), data.data(), 64), 0);
}

TEST(BufferPoolTest, WriteCoalescing) {
  PageFile file(64);
  const PageId a = file.Allocate();
  file.stats().Reset();

  {
    BufferPool pool(&file, 2);
    std::vector<char> data(64, 'y');
    for (int i = 0; i < 10; ++i) pool.Write(a, data.data());
  }  // destructor flushes
  EXPECT_EQ(file.stats().writes, 1u);
}

TEST(BufferPoolTest, DiscardDropsWithoutWriteback) {
  PageFile file(64);
  const PageId a = file.Allocate();
  file.stats().Reset();

  BufferPool pool(&file, 2);
  std::vector<char> data(64, 'z');
  pool.Write(a, data.data());
  pool.Discard(a);
  pool.FlushAll();
  EXPECT_EQ(file.stats().writes, 0u);
}

TEST(BufferPoolTest, ReadsStayCorrectAcrossEvictions) {
  PageFile file(16);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    const PageId id = file.Allocate();
    std::vector<char> data(16, static_cast<char>('a' + i));
    file.Write(id, data.data());
    ids.push_back(id);
  }
  BufferPool pool(&file, 3);
  std::vector<char> out(16);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Read(ids[i], out.data());
      EXPECT_EQ(out[0], static_cast<char>('a' + i));
    }
  }
}

}  // namespace
}  // namespace srtree
