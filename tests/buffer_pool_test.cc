#include "src/storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(BufferPoolTest, HitsAvoidDiskReads) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> data(64, 'a');
  file.Write(a, data.data());
  file.stats().Reset();

  BufferPool pool(&file, 4);
  std::vector<char> out(64);
  pool.Read(a, out.data());
  pool.Read(a, out.data());
  pool.Read(a, out.data());
  EXPECT_EQ(file.stats().reads, 1u);  // only the first miss hit the disk
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  const PageId c = file.Allocate();
  file.stats().Reset();

  BufferPool pool(&file, 2);
  std::vector<char> data(64, 'x');
  pool.Write(a, data.data());
  EXPECT_EQ(file.stats().writes, 0u);  // buffered, not yet on disk

  std::vector<char> out(64);
  pool.Read(b, out.data());
  pool.Read(c, out.data());  // evicts a (LRU), forcing the writeback
  EXPECT_EQ(file.stats().writes, 1u);

  std::vector<char> check(64);
  file.Read(a, check.data());
  EXPECT_EQ(std::memcmp(check.data(), data.data(), 64), 0);
}

TEST(BufferPoolTest, WriteCoalescing) {
  PageFile file(64);
  const PageId a = file.Allocate();
  file.stats().Reset();

  {
    BufferPool pool(&file, 2);
    std::vector<char> data(64, 'y');
    for (int i = 0; i < 10; ++i) pool.Write(a, data.data());
  }  // destructor flushes
  EXPECT_EQ(file.stats().writes, 1u);
}

TEST(BufferPoolTest, DiscardDropsWithoutWriteback) {
  PageFile file(64);
  const PageId a = file.Allocate();
  file.stats().Reset();

  BufferPool pool(&file, 2);
  std::vector<char> data(64, 'z');
  pool.Write(a, data.data());
  pool.Discard(a);
  pool.FlushAll();
  EXPECT_EQ(file.stats().writes, 0u);
}

TEST(BufferPoolTest, ReadsStayCorrectAcrossEvictions) {
  PageFile file(16);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    const PageId id = file.Allocate();
    std::vector<char> data(16, static_cast<char>('a' + i));
    file.Write(id, data.data());
    ids.push_back(id);
  }
  BufferPool pool(&file, 3);
  std::vector<char> out(16);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Read(ids[i], out.data());
      EXPECT_EQ(out[0], static_cast<char>('a' + i));
    }
  }
}

// The zombie protocol, single-threaded: a Write() to a pinned page detaches
// the pinned frame (the holder keeps reading the pre-write bytes until it
// unpins) and installs the new bytes for every subsequent reader.
TEST(BufferPoolTest, WriteToPinnedFrameKeepsOldBytesUntilUnpin) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> old_bytes(64, 'o');
  file.Write(a, old_bytes.data());

  BufferPool pool(&file, 4);
  {
    BufferPool::PageGuard guard = pool.Pin(a);
    EXPECT_EQ(guard.data()[0], 'o');

    std::vector<char> new_bytes(64, 'n');
    pool.Write(a, new_bytes.data());

    // The pin still sees the bytes it pinned — no torn or switched view.
    EXPECT_EQ(std::memcmp(guard.data(), old_bytes.data(), 64), 0);

    // A fresh pin sees the new bytes immediately.
    BufferPool::PageGuard fresh = pool.Pin(a);
    EXPECT_EQ(std::memcmp(fresh.data(), new_bytes.data(), 64), 0);
  }
  // The detached frame was superseded, so only the new bytes reach disk.
  pool.FlushAll();
  std::vector<char> check(64);
  file.Read(a, check.data());
  EXPECT_EQ(check[0], 'n');
}

TEST(BufferPoolTest, DiscardLeavesPinnedFrameReadable) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> on_disk(64, 'd');
  file.Write(a, on_disk.data());

  BufferPool pool(&file, 4);
  std::vector<char> staged(64, 's');
  pool.Write(a, staged.data());
  {
    BufferPool::PageGuard guard = pool.Pin(a);
    pool.Discard(a);
    // The pinned (now zombie) frame keeps its bytes; the staged write is
    // dropped, never written back.
    EXPECT_EQ(std::memcmp(guard.data(), staged.data(), 64), 0);
  }
  pool.FlushAll();
  std::vector<char> check(64);
  file.Read(a, check.data());
  EXPECT_EQ(check[0], 'd');
}

// Concurrent Pin/Read of a page that a writer keeps re-Writing: every pin
// must observe one complete write (a uniform byte pattern), never a torn
// mix. Run under TSan by the CI sanitizer job.
TEST(BufferPoolTest, ConcurrentPinAndWriteInvalidateIsUntorn) {
  constexpr size_t kPageSize = 256;
  PageFile file(kPageSize);
  const PageId a = file.Allocate();
  std::vector<char> init(kPageSize, static_cast<char>(0));
  file.Write(a, init.data());

  BufferPool pool(&file, 8);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  const auto uniform = [](const char* data, size_t n) {
    for (size_t i = 1; i < n; ++i) {
      if (data[i] != data[0]) return false;
    }
    return true;
  };
  const auto reader = [&] {
    std::vector<char> out(kPageSize);
    while (!stop.load(std::memory_order_relaxed)) {
      {
        BufferPool::PageGuard guard = pool.Pin(a);
        if (!uniform(guard.data(), kPageSize)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      pool.Read(a, out.data());
      if (!uniform(out.data(), kPageSize)) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) readers.emplace_back(reader);

  std::vector<char> buf(kPageSize);
  for (int i = 0; i < 4000; ++i) {
    std::memset(buf.data(), static_cast<char>(i & 0x7f), kPageSize);
    pool.Write(a, buf.data());
    if (i % 16 == 15) pool.Discard(a);  // mix in pin-while-discard traffic
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace srtree
