// Randomized differential stress test: long streams of mixed operations
// (insert, delete, k-NN, range query) run against every dynamic tree and a
// brute-force reference, with invariants checked along the way. Points are
// drawn from a coarse grid so duplicate coordinates occur naturally.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/index/brute_force.h"
#include "tests/test_util.h"

namespace srtree {
namespace {

using testing::MakeSmallPageIndex;
using testing::TypeToken;

struct StressParam {
  IndexType type;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<StressParam>& info) {
  return TypeToken(info.param.type) + "_seed" +
         std::to_string(info.param.seed);
}

class StressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressTest, RandomOperationStreamMatchesReference) {
  constexpr int kDim = 4;
  constexpr int kOps = 1200;
  Xoshiro256 rng(GetParam().seed);

  auto index = MakeSmallPageIndex(GetParam().type, kDim);
  BruteForceIndex::Options ref_options;
  ref_options.dim = kDim;
  BruteForceIndex reference(ref_options);

  // Live (point, oid) pairs for deletions.
  std::vector<std::pair<Point, uint32_t>> live;
  uint32_t next_oid = 0;

  auto random_point = [&] {
    Point p(kDim);
    // A 12^4 grid: collisions (duplicate points) happen regularly.
    for (double& c : p) c = static_cast<double>(rng.NextBounded(12)) / 12.0;
    return p;
  };

  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 50 || live.empty()) {
      const Point p = random_point();
      const uint32_t oid = next_oid++;
      ASSERT_TRUE(index->Insert(p, oid).ok());
      ASSERT_TRUE(reference.Insert(p, oid).ok());
      live.emplace_back(p, oid);
    } else if (dice < 70) {
      const size_t victim = rng.NextBounded(live.size());
      const auto [p, oid] = live[victim];
      ASSERT_TRUE(index->Delete(p, oid).ok()) << "op " << op;
      ASSERT_TRUE(reference.Delete(p, oid).ok());
      live[victim] = live.back();
      live.pop_back();
    } else if (dice < 90) {
      const Point q = random_point();
      const int k = 1 + static_cast<int>(rng.NextBounded(8));
      const auto actual = index->Search(q, QuerySpec::Knn(k)).neighbors;
      const auto expected = reference.Search(q, QuerySpec::Knn(k)).neighbors;
      ASSERT_EQ(actual.size(), expected.size()) << "op " << op;
      for (size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(actual[i].oid, expected[i].oid) << "op " << op;
      }
    } else {
      const Point q = random_point();
      const double radius = rng.Uniform(0.05, 0.5);
      const auto actual = index->Search(q, QuerySpec::Range(radius)).neighbors;
      const auto expected =
          reference.Search(q, QuerySpec::Range(radius)).neighbors;
      ASSERT_EQ(actual.size(), expected.size()) << "op " << op;
      for (size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(actual[i].oid, expected[i].oid) << "op " << op;
      }
    }
    if (op % 200 == 199) {
      const Status status = index->CheckInvariants();
      ASSERT_TRUE(status.ok()) << status.ToString() << " at op " << op;
      ASSERT_EQ(index->size(), reference.size());
    }
  }
}

std::vector<StressParam> AllStressParams() {
  std::vector<StressParam> params;
  for (const IndexType type :
       {IndexType::kSRTree, IndexType::kSSTree, IndexType::kRStarTree,
        IndexType::kKdbTree, IndexType::kXTree, IndexType::kTvTree}) {
    for (const uint64_t seed : {101u, 202u, 303u}) {
      params.push_back(StressParam{type, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(DynamicTrees, StressTest,
                         ::testing::ValuesIn(AllStressParams()), ParamName);

}  // namespace
}  // namespace srtree
