// The unified Search() API and the concurrent QueryEngine.
//
// Covers, for every index type (seven trees + the scan baseline):
//   * Search() against the brute-force oracle for all three query kinds;
//   * the input-validation contract (k <= 0, negative/non-finite radius,
//     dimensionality mismatch) — InvalidArgument plus an empty result,
//     where the pre-redesign behavior was a crash or an unchecked traversal;
//   * per-query IoStatsDelta / elapsed-time fields and the accounting-parity
//     contract against the legacy global counters;
//   * RunBatch() determinism: 8 workers return byte-identical neighbors to a
//     sequential loop, with and without a shared buffer pool;
//   * snapshot pinning: one batch observes one committed version even while
//     a writer commits mutations mid-batch (SR-tree).

#include "src/engine/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/experiment.h"
#include "src/index/brute_force.h"
#include "src/index/point_index.h"
#include "src/index/query.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

std::vector<IndexType> AllIndexTypes() {
  std::vector<IndexType> types = {
      IndexType::kSRTree,  IndexType::kSSTree, IndexType::kRStarTree,
      IndexType::kKdbTree, IndexType::kVamSplitRTree,
      IndexType::kXTree,   IndexType::kTvTree, IndexType::kScan};
  return types;
}

class SearchApiTest : public ::testing::TestWithParam<IndexType> {
 protected:
  static constexpr int kDim = 6;
  static constexpr size_t kPoints = 400;

  std::unique_ptr<PointIndex> BuildIndex() {
    IndexConfig config;
    config.dim = kDim;
    config.page_size = 1024;
    config.leaf_data_size = 0;
    auto index = MakeIndex(GetParam(), config);
    const Status status =
        index->BulkLoad(data_.ToPoints(), data_.SequentialOids());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return index;
  }

  std::unique_ptr<BruteForceIndex> BuildOracle() {
    BruteForceIndex::Options options;
    options.dim = kDim;
    auto oracle = std::make_unique<BruteForceIndex>(options);
    EXPECT_TRUE(
        oracle->BulkLoad(data_.ToPoints(), data_.SequentialOids()).ok());
    return oracle;
  }

  Dataset data_ = MakeUniformDataset(kPoints, kDim, /*seed=*/101);
  std::vector<Point> queries_ =
      SampleQueriesFromDataset(data_, 12, /*seed=*/103);
};

TEST_P(SearchApiTest, MatchesOracleForEveryQueryKind) {
  const auto index = BuildIndex();
  const auto oracle = BuildOracle();
  for (const Point& q : queries_) {
    for (const QuerySpec& spec :
         {QuerySpec::Knn(7), QuerySpec::KnnBestFirst(7),
          QuerySpec::Range(0.4)}) {
      const QueryResult got = index->Search(q, spec);
      const QueryResult want = oracle->Search(q, spec);
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      ASSERT_EQ(got.neighbors.size(), want.neighbors.size());
      for (size_t i = 0; i < got.neighbors.size(); ++i) {
        EXPECT_EQ(got.neighbors[i].oid, want.neighbors[i].oid) << "rank " << i;
        EXPECT_DOUBLE_EQ(got.neighbors[i].distance,
                         want.neighbors[i].distance);
      }
    }
  }
}

// Regression: k <= 0 used to CHECK-crash inside KnnCandidates, and a
// negative radius ran a pointless traversal; both are now rejected before
// any page is touched.
TEST_P(SearchApiTest, InvalidSpecsAreRejected) {
  const auto index = BuildIndex();
  const Point& q = queries_.front();

  for (const QuerySpec& bad :
       {QuerySpec::Knn(0), QuerySpec::Knn(-3), QuerySpec::KnnBestFirst(0),
        QuerySpec::KnnBestFirst(-1), QuerySpec::Range(-0.5),
        QuerySpec::Range(std::numeric_limits<double>::quiet_NaN()),
        QuerySpec::Range(std::numeric_limits<double>::infinity())}) {
    const QueryResult result = index->Search(q, bad);
    EXPECT_TRUE(result.status.IsInvalidArgument()) << result.status.ToString();
    EXPECT_TRUE(result.neighbors.empty());
    EXPECT_EQ(result.io.reads, 0u);  // rejected before any traversal
  }

  const Point wrong_dim(kDim + 1, 0.5);
  const QueryResult result = index->Search(wrong_dim, QuerySpec::Knn(3));
  EXPECT_TRUE(result.status.IsInvalidArgument());
  EXPECT_TRUE(result.neighbors.empty());
}

TEST_P(SearchApiTest, QueryResultCarriesPerQueryAccounting) {
  const auto index = BuildIndex();
  const QueryResult result =
      index->Search(queries_.front(), QuerySpec::Knn(5));
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.io.reads, 0u);
  EXPECT_EQ(result.io.reads, result.io.leaf_reads + result.io.nonleaf_reads);
  // No cache simulation is attached, so every read is a (simulated) miss.
  EXPECT_EQ(result.io.cache_misses, result.io.reads);
  EXPECT_GE(result.elapsed_seconds, 0.0);
}

// Accounting parity: across a single-threaded batch, the per-query deltas
// must sum to exactly the movement of the legacy global counters.
TEST_P(SearchApiTest, DeltaSumsMatchGlobalCounters) {
  const auto index = BuildIndex();
  const IoStats before = index->GetIoStats();
  IoStatsDelta sum;
  for (const Point& q : queries_) {
    sum.MergeFrom(index->Search(q, QuerySpec::Knn(5)).io);
    sum.MergeFrom(index->Search(q, QuerySpec::KnnBestFirst(3)).io);
    sum.MergeFrom(index->Search(q, QuerySpec::Range(0.35)).io);
  }
  const IoStats after = index->GetIoStats();
  EXPECT_EQ(sum.reads, after.reads - before.reads);
  EXPECT_EQ(sum.leaf_reads, after.leaf_reads() - before.leaf_reads());
  EXPECT_EQ(sum.nonleaf_reads, after.nonleaf_reads() - before.nonleaf_reads());
  EXPECT_EQ(sum.cache_misses, after.cache_misses - before.cache_misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, SearchApiTest, ::testing::ValuesIn(AllIndexTypes()),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      std::string name = IndexTypeName(info.param);
      for (char& c : name) {
        if (c == '-' || c == '*' || c == ' ') c = '_';
      }
      return name;
    });

class QueryEngineTest : public ::testing::Test {
 protected:
  static constexpr int kDim = 8;

  std::unique_ptr<PointIndex> BuildTree(size_t n) {
    IndexConfig config;
    config.dim = kDim;
    config.page_size = 1024;
    config.leaf_data_size = 0;
    auto index = MakeIndex(IndexType::kSRTree, config);
    const Dataset data = MakeUniformDataset(n, kDim, /*seed=*/211);
    EXPECT_TRUE(index->BulkLoad(data.ToPoints(), data.SequentialOids()).ok());
    data_ = data;
    return index;
  }

  std::vector<Query> MakeBatch(size_t num_queries) {
    const std::vector<Point> points =
        SampleQueriesFromDataset(data_, num_queries, /*seed=*/223);
    std::vector<Query> batch;
    for (size_t i = 0; i < points.size(); ++i) {
      switch (i % 3) {
        case 0:
          batch.push_back(Query{points[i], QuerySpec::Knn(6)});
          break;
        case 1:
          batch.push_back(Query{points[i], QuerySpec::KnnBestFirst(4)});
          break;
        default:
          batch.push_back(Query{points[i], QuerySpec::Range(0.6)});
          break;
      }
    }
    return batch;
  }

  Dataset data_{kDim};
};

// The acceptance criterion of the redesign: a parallel RunBatch must be
// indistinguishable from running the queries one by one.
TEST_F(QueryEngineTest, EightWorkersMatchSequentialByteForByte) {
  auto index = BuildTree(1200);
  const std::vector<Query> batch = MakeBatch(200);

  std::vector<std::vector<Neighbor>> sequential;
  for (const Query& q : batch) {
    sequential.push_back(index->Search(q.point, q.spec).neighbors);
  }

  EngineOptions options;
  options.num_workers = 8;
  options.steal_grain = 4;  // small grain => many chunks => real stealing
  QueryEngine engine(std::move(index), options);
  const std::vector<QueryResult> results = engine.RunBatch(batch);

  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_EQ(results[i].neighbors, sequential[i]) << "query " << i;
  }

  const BatchStats stats = engine.last_batch_stats();
  EXPECT_EQ(stats.queries, batch.size());
  EXPECT_GT(stats.chunks, 0u);
  EXPECT_GT(stats.io.reads, 0u);
}

TEST_F(QueryEngineTest, BufferPoolKeepsResultsAndCutsReads) {
  auto index = BuildTree(1200);
  const std::vector<Query> batch = MakeBatch(120);

  std::vector<std::vector<Neighbor>> uncached;
  uint64_t uncached_reads = 0;
  for (const Query& q : batch) {
    const QueryResult r = index->Search(q.point, q.spec);
    uncached.push_back(r.neighbors);
    uncached_reads += r.io.reads;
  }

  EngineOptions options;
  options.num_workers = 4;
  options.buffer_pool_pages = 256;
  QueryEngine engine(std::move(index), options);
  (void)engine.RunBatch(batch);  // warm the pool
  const std::vector<QueryResult> results = engine.RunBatch(batch);

  uint64_t pooled_reads = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].neighbors, uncached[i]) << "query " << i;
    pooled_reads += results[i].io.reads;
  }
  // Pool hits never reach the page file, so they are charged to no one.
  EXPECT_LT(pooled_reads, uncached_reads);

  // ReleaseIndex detaches the pool: the uncached read path is restored for
  // the paper benches.
  index = engine.ReleaseIndex();
  ASSERT_NE(index, nullptr);
  uint64_t detached_reads = 0;
  for (const Query& q : batch) {
    detached_reads += index->Search(q.point, q.spec).io.reads;
  }
  EXPECT_EQ(detached_reads, uncached_reads);
}

TEST_F(QueryEngineTest, EmptyAndTinyBatches) {
  auto index = BuildTree(300);
  EngineOptions options;
  options.num_workers = 4;
  QueryEngine engine(std::move(index), options);

  EXPECT_TRUE(engine.RunBatch({}).empty());

  const std::vector<Query> one = MakeBatch(1);
  const std::vector<QueryResult> results = engine.RunBatch(one);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[0].neighbors.empty());
}

// Snapshot pinning: every query of one batch is answered from the same
// committed version. A batch of IDENTICAL queries therefore returns
// identical results even while a single writer commits inserts and deletes
// mid-batch — without the pinned snapshot, chunks running before and after
// a commit would disagree.
TEST_F(QueryEngineTest, RunBatchPinsOneSnapshotAcrossWriterCommits) {
  auto owned = BuildTree(900);
  PointIndex* const raw = owned.get();  // the SR-tree's single writer handle

  EngineOptions options;
  options.num_workers = 4;
  options.steal_grain = 2;  // many chunks => commits land between chunks
  QueryEngine engine(std::move(owned), options);

  const std::vector<Query> probe = MakeBatch(1);
  std::vector<Query> batch(96, Query{probe[0].point, QuerySpec::Knn(8)});

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const Dataset extra = MakeUniformDataset(400, kDim, /*seed=*/733);
    const std::vector<Point> points = extra.ToPoints();
    uint32_t oid = 1'000'000;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Point& p = points[i % points.size()];
      ASSERT_TRUE(raw->Insert(p, oid).ok());
      if (i % 2 == 1) {
        ASSERT_TRUE(raw->Delete(p, oid).ok());
      }
      ++oid;
      ++i;
    }
  });

  for (int round = 0; round < 20; ++round) {
    const std::vector<QueryResult> results = engine.RunBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
      EXPECT_EQ(results[i].neighbors, results[0].neighbors)
          << "round " << round << " query " << i
          << " diverged from its batch snapshot";
    }
  }

  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_TRUE(engine.index().CheckInvariants().ok());
}

TEST_F(QueryEngineTest, InvalidQueriesSurfacePerResultStatus) {
  auto index = BuildTree(300);
  std::vector<Query> batch = MakeBatch(4);
  batch[1].spec = QuerySpec::Knn(0);
  batch[3].spec = QuerySpec::Range(-1.0);

  EngineOptions options;
  options.num_workers = 2;
  QueryEngine engine(std::move(index), options);
  const std::vector<QueryResult> results = engine.RunBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.IsInvalidArgument());
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_TRUE(results[3].status.IsInvalidArgument());
  EXPECT_TRUE(results[1].neighbors.empty());
  EXPECT_TRUE(results[3].neighbors.empty());
}

}  // namespace
}  // namespace srtree
