#include "src/vamsplit/vam_split_r_tree.h"

#include <gtest/gtest.h>

#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(VamSplitRTreeTest, PaperFanouts) {
  VamSplitRTree::Options options;
  options.dim = 16;
  VamSplitRTree tree(options);
  EXPECT_EQ(tree.node_capacity(), 31u);
  EXPECT_EQ(tree.leaf_capacity(), 12u);
  EXPECT_EQ(tree.name(), "VAMSplit R-tree");
}

TEST(VamSplitRTreeTest, StaticStructureRejectsUpdates) {
  VamSplitRTree::Options options;
  options.dim = 2;
  VamSplitRTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{0.5, 0.5}, 0).IsUnimplemented());
  EXPECT_TRUE(tree.Delete(Point{0.5, 0.5}, 0).IsUnimplemented());
}

TEST(VamSplitRTreeTest, BulkLoadTwiceFails) {
  VamSplitRTree::Options options;
  options.dim = 2;
  VamSplitRTree tree(options);
  const Dataset data = MakeUniformDataset(100, 2, /*seed=*/59);
  ASSERT_TRUE(tree.BulkLoad(data.ToPoints(), data.SequentialOids()).ok());
  EXPECT_EQ(tree.BulkLoad(data.ToPoints(), data.SequentialOids()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(VamSplitRTreeTest, UsesMinimumNumberOfLeaves) {
  // The defining guarantee: the split point is rounded to multiples of the
  // maximal-subtree capacity, so exactly ceil(n / leaf_capacity) leaves are
  // allocated.
  for (const size_t n : {100u, 1000u, 2500u}) {
    VamSplitRTree::Options options;
    options.dim = 4;
    options.page_size = 1024;
    options.leaf_data_size = 0;
    VamSplitRTree tree(options);
    const Dataset data = MakeUniformDataset(n, 4, /*seed=*/61);
    ASSERT_TRUE(tree.BulkLoad(data.ToPoints(), data.SequentialOids()).ok());
    const TreeStats stats = tree.GetTreeStats();
    const uint64_t min_leaves =
        (n + tree.leaf_capacity() - 1) / tree.leaf_capacity();
    EXPECT_EQ(stats.leaf_count, min_leaves) << "n=" << n;
    EXPECT_TRUE(tree.CheckInvariants().ok());
  }
}

TEST(VamSplitRTreeTest, MinimalHeight) {
  VamSplitRTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  VamSplitRTree tree(options);
  const size_t n = 2000;
  const Dataset data = MakeUniformDataset(n, 4, /*seed=*/67);
  ASSERT_TRUE(tree.BulkLoad(data.ToPoints(), data.SequentialOids()).ok());
  // Smallest h with leaf_cap * node_cap^h >= n.
  uint64_t cap = tree.leaf_capacity();
  int height = 1;
  while (cap < n) {
    cap *= tree.node_capacity();
    ++height;
  }
  EXPECT_EQ(tree.height(), height);
}

TEST(VamSplitRTreeTest, EmptyBulkLoad) {
  VamSplitRTree::Options options;
  options.dim = 2;
  VamSplitRTree tree(options);
  ASSERT_TRUE(tree.BulkLoad({}, {}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(
      tree.Search(Point{0.0, 0.0}, QuerySpec::Knn(3)).neighbors.empty());
}

}  // namespace
}  // namespace srtree
