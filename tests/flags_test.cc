#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace srtree {
namespace {

char** MakeArgv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (std::string& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(FlagParserTest, DefaultsAndOverrides) {
  FlagParser parser;
  parser.AddInt("n", 100, "count")
      .AddDouble("ratio", 0.5, "ratio")
      .AddBool("verbose", false, "verbosity")
      .AddString("name", "abc", "a name");

  std::vector<std::string> args = {"prog", "--n", "42", "--verbose",
                                   "--name=xyz"};
  ASSERT_TRUE(parser.Parse(5, MakeArgv(args)).ok());
  EXPECT_EQ(parser.GetInt("n"), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.5);
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.GetString("name"), "xyz");
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  std::vector<std::string> args = {"prog", "--bogus", "3"};
  EXPECT_TRUE(parser.Parse(3, MakeArgv(args)).IsInvalidArgument());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  std::vector<std::string> args = {"prog", "--n"};
  EXPECT_TRUE(parser.Parse(2, MakeArgv(args)).IsInvalidArgument());
}

TEST(FlagParserTest, IntListParsing) {
  FlagParser parser;
  parser.AddString("sizes", "", "sizes");
  std::vector<std::string> args = {"prog", "--sizes", "10,20,30"};
  ASSERT_TRUE(parser.Parse(3, MakeArgv(args)).ok());
  const std::vector<int64_t> sizes = parser.GetIntList("sizes");
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 10);
  EXPECT_EQ(sizes[2], 30);
}

TEST(FlagParserTest, EmptyListIsEmpty) {
  FlagParser parser;
  parser.AddString("sizes", "", "sizes");
  std::vector<std::string> args = {"prog"};
  ASSERT_TRUE(parser.Parse(1, MakeArgv(args)).ok());
  EXPECT_TRUE(parser.GetIntList("sizes").empty());
}

TEST(FlagParserTest, HelpReturnsNotFound) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  std::vector<std::string> args = {"prog", "--help"};
  EXPECT_TRUE(parser.Parse(2, MakeArgv(args)).IsNotFound());
}

}  // namespace
}  // namespace srtree
