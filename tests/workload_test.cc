#include <algorithm>
#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "src/workload/cluster.h"
#include "src/workload/dataset.h"
#include "src/workload/histogram.h"
#include "src/workload/queries.h"
#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(DatasetTest, AppendAndAccess) {
  Dataset data(3);
  EXPECT_EQ(data.size(), 0u);
  data.Append(Point{1.0, 2.0, 3.0});
  data.Append(Point{4.0, 5.0, 6.0});
  ASSERT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data.point(1)[2], 6.0);
  const std::vector<Point> points = data.ToPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0][0], 1.0);
  const std::vector<uint32_t> oids = data.SequentialOids();
  EXPECT_EQ(oids[1], 1u);
}

TEST(UniformTest, InUnitCubeAndDeterministic) {
  const Dataset a = MakeUniformDataset(500, 6, /*seed=*/5);
  const Dataset b = MakeUniformDataset(500, 6, /*seed=*/5);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_GE(a.point(i)[d], 0.0);
      EXPECT_LT(a.point(i)[d], 1.0);
      EXPECT_DOUBLE_EQ(a.point(i)[d], b.point(i)[d]);
    }
  }
}

TEST(UniformTest, CoordinateMeanNearHalf) {
  const Dataset data = MakeUniformDataset(20000, 2, /*seed=*/7);
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) sum += data.point(i)[0];
  EXPECT_NEAR(sum / static_cast<double>(data.size()), 0.5, 0.02);
}

TEST(ClusterTest, SizeAndExtent) {
  ClusterConfig config;
  config.num_clusters = 10;
  config.points_per_cluster = 100;
  config.dim = 8;
  config.max_radius = 0.25;
  config.seed = 9;
  const Dataset data = MakeClusterDataset(config);
  ASSERT_EQ(data.size(), 1000u);
  // Cluster centers live in [0,1); points deviate by at most max_radius.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_GE(data.point(i)[d], -config.max_radius);
      EXPECT_LE(data.point(i)[d], 1.0 + config.max_radius);
    }
  }
}

TEST(ClusterTest, PointsConcentrateAroundFewCenters) {
  // With one cluster the spread is bounded by twice its radius.
  ClusterConfig config;
  config.num_clusters = 1;
  config.points_per_cluster = 500;
  config.dim = 4;
  config.max_radius = 0.1;
  config.seed = 11;
  const Dataset data = MakeClusterDataset(config);
  const DistanceStats stats = ComputePairwiseDistances(data, 200, /*seed=*/1);
  EXPECT_LE(stats.max, 2.0 * config.max_radius + 1e-9);
}

TEST(HistogramTest, NormalizedAndNonNegative) {
  HistogramConfig config;
  config.n = 500;
  config.dim = 16;
  config.seed = 13;
  const Dataset data = MakeHistogramDataset(config);
  ASSERT_EQ(data.size(), 500u);
  for (size_t i = 0; i < data.size(); ++i) {
    double sum = 0.0;
    for (int d = 0; d < 16; ++d) {
      EXPECT_GE(data.point(i)[d], 0.0);
      sum += data.point(i)[d];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HistogramTest, MoreClusteredThanUniform) {
  // The generator's entire purpose: nearest neighbors must sit much closer
  // than in uniform data of the same size (the non-uniformity the SR-tree
  // exploits).
  HistogramConfig config;
  config.n = 1000;
  config.dim = 16;
  config.seed = 17;
  const Dataset histo = MakeHistogramDataset(config);
  const Dataset uniform = MakeUniformDataset(1000, 16, /*seed=*/17);
  const DistanceStats histo_stats =
      ComputePairwiseDistances(histo, 300, /*seed=*/3);
  const DistanceStats uniform_stats =
      ComputePairwiseDistances(uniform, 300, /*seed=*/3);
  EXPECT_LT(histo_stats.min, uniform_stats.min);
  EXPECT_LT(histo_stats.avg, uniform_stats.avg);
}

TEST(PairwiseDistanceTest, ExactOnSmallSet) {
  Dataset data(1);
  data.Append(Point{0.0});
  data.Append(Point{3.0});
  data.Append(Point{7.0});
  const DistanceStats stats =
      ComputePairwiseDistances(data, 100, /*seed=*/1);
  EXPECT_DOUBLE_EQ(stats.min, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
  EXPECT_DOUBLE_EQ(stats.avg, (3.0 + 4.0 + 7.0) / 3.0);
}

TEST(PairwiseDistanceTest, DistanceConcentrationWithDimensionality) {
  // Figure 17's phenomenon: min/max converges as dimensionality grows.
  const Dataset low = MakeUniformDataset(2000, 2, /*seed=*/19);
  const Dataset high = MakeUniformDataset(2000, 64, /*seed=*/19);
  const DistanceStats low_stats =
      ComputePairwiseDistances(low, 400, /*seed=*/5);
  const DistanceStats high_stats =
      ComputePairwiseDistances(high, 400, /*seed=*/5);
  EXPECT_GT(high_stats.min / high_stats.max,
            low_stats.min / low_stats.max);
}

TEST(CsvTest, RoundTrip) {
  const Dataset data = MakeUniformDataset(50, 5, /*seed=*/27);
  const std::string path = ::testing::TempDir() + "/dataset.csv";
  ASSERT_TRUE(SaveCsvDataset(data, path).ok());
  const StatusOr<Dataset> loaded = LoadCsvDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), data.size());
  ASSERT_EQ(loaded->dim(), data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < data.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded->point(i)[d], data.point(i)[d]);
    }
  }
}

TEST(CsvTest, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/commented.csv";
  std::ofstream(path) << "# a comment\n1.0,2.0\n\n3.0,4.0\n";
  const StatusOr<Dataset> loaded = LoadCsvDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->point(1)[1], 4.0);
}

TEST(CsvTest, RaggedRowsRejected) {
  const std::string path = ::testing::TempDir() + "/ragged.csv";
  std::ofstream(path) << "1.0,2.0\n3.0,4.0,5.0\n";
  EXPECT_TRUE(LoadCsvDataset(path).status().IsInvalidArgument());
}

TEST(CsvTest, NonNumericRejected) {
  const std::string path = ::testing::TempDir() + "/nonnum.csv";
  std::ofstream(path) << "1.0,banana\n";
  EXPECT_TRUE(LoadCsvDataset(path).status().IsInvalidArgument());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadCsvDataset("/nonexistent/nowhere.csv").status().code(),
            StatusCode::kIoError);
}

TEST(QueriesTest, FromDatasetAreDatasetPoints) {
  const Dataset data = MakeUniformDataset(100, 4, /*seed=*/21);
  const std::vector<Point> queries =
      SampleQueriesFromDataset(data, 20, /*seed=*/23);
  ASSERT_EQ(queries.size(), 20u);
  for (const Point& q : queries) {
    bool found = false;
    for (size_t i = 0; i < data.size() && !found; ++i) {
      found = std::equal(q.begin(), q.end(), data.point(i).begin(),
                         data.point(i).end());
    }
    EXPECT_TRUE(found);
  }
}

TEST(QueriesTest, UniformQueriesInUnitCube) {
  const std::vector<Point> queries = SampleUniformQueries(5, 50, /*seed=*/25);
  ASSERT_EQ(queries.size(), 50u);
  for (const Point& q : queries) {
    ASSERT_EQ(q.size(), 5u);
    for (const double c : q) {
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, 1.0);
    }
  }
}

}  // namespace
}  // namespace srtree
