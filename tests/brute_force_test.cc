#include "src/index/brute_force.h"

#include <gtest/gtest.h>

namespace srtree {
namespace {

BruteForceIndex MakeIndex2D() {
  BruteForceIndex::Options options;
  options.dim = 2;
  return BruteForceIndex(options);
}

TEST(BruteForceTest, InsertAndQuery) {
  BruteForceIndex index = MakeIndex2D();
  ASSERT_TRUE(index.Insert(Point{0.0, 0.0}, 1).ok());
  ASSERT_TRUE(index.Insert(Point{1.0, 0.0}, 2).ok());
  ASSERT_TRUE(index.Insert(Point{5.0, 5.0}, 3).ok());
  EXPECT_EQ(index.size(), 3u);

  const std::vector<Neighbor> result =
      index.Search(Point{0.1, 0.0}, QuerySpec::Knn(2)).neighbors;
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 1u);
  EXPECT_EQ(result[1].oid, 2u);
}

TEST(BruteForceTest, DimMismatchRejected) {
  BruteForceIndex index = MakeIndex2D();
  EXPECT_TRUE(index.Insert(Point{1.0, 2.0, 3.0}, 1).IsInvalidArgument());
}

TEST(BruteForceTest, RangeSearchSortedByDistance) {
  BruteForceIndex index = MakeIndex2D();
  ASSERT_TRUE(index.Insert(Point{3.0, 0.0}, 1).ok());
  ASSERT_TRUE(index.Insert(Point{1.0, 0.0}, 2).ok());
  ASSERT_TRUE(index.Insert(Point{9.0, 0.0}, 3).ok());
  const std::vector<Neighbor> result =
      index.Search(Point{0.0, 0.0}, QuerySpec::Range(4.0)).neighbors;
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 2u);
  EXPECT_EQ(result[1].oid, 1u);
}

TEST(BruteForceTest, DeleteRemovesExactPair) {
  BruteForceIndex index = MakeIndex2D();
  ASSERT_TRUE(index.Insert(Point{1.0, 1.0}, 1).ok());
  ASSERT_TRUE(index.Insert(Point{1.0, 1.0}, 2).ok());
  EXPECT_TRUE(index.Delete(Point{1.0, 1.0}, 3).IsNotFound());
  ASSERT_TRUE(index.Delete(Point{1.0, 1.0}, 1).ok());
  EXPECT_EQ(index.size(), 1u);
  const std::vector<Neighbor> result =
      index.Search(Point{1.0, 1.0}, QuerySpec::Knn(5)).neighbors;
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 2u);
}

TEST(BruteForceTest, ScanChargesSequentialPages) {
  BruteForceIndex::Options options;
  options.dim = 16;
  options.page_size = 8192;
  options.leaf_data_size = 512;
  BruteForceIndex index(options);
  // 12 entries per 8 KB page (16 doubles + oid + 512-byte payload).
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(index.Insert(Point(16, i * 0.01), i).ok());
  }
  // The per-query delta measures the scan cost without resetting counters.
  const QueryResult result = index.Search(Point(16, 0.0), QuerySpec::Knn(1));
  EXPECT_EQ(result.io.reads, 3u);  // ceil(25 / 12)
  EXPECT_EQ(result.io.leaf_reads, 3u);
}

}  // namespace
}  // namespace srtree
