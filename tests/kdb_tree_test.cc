#include "src/kdb/kdb_tree.h"

#include <gtest/gtest.h>

#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(KdbTreeTest, PaperFanouts) {
  KdbTree::Options options;
  options.dim = 16;
  KdbTree tree(options);
  EXPECT_EQ(tree.node_capacity(), 31u);
  EXPECT_EQ(tree.leaf_capacity(), 12u);
  EXPECT_EQ(tree.name(), "K-D-B-tree");
}

TEST(KdbTreeTest, RejectsPointsOutsideDomain) {
  KdbTree::Options options;
  options.dim = 2;
  options.domain_lo = 0.0;
  options.domain_hi = 1.0;
  KdbTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{0.5, 1.5}, 0).IsInvalidArgument());
  EXPECT_TRUE(tree.Insert(Point{0.5, 0.5}, 0).ok());
}

TEST(KdbTreeTest, PartitionSurvivesGrowth) {
  KdbTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  KdbTree tree(options);
  const Dataset data = MakeUniformDataset(3000, 4, /*seed=*/41);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
    if (i % 500 == 499) {
      const Status status = tree.CheckInvariants();
      ASSERT_TRUE(status.ok()) << status.ToString() << " at " << i;
    }
  }
  EXPECT_GE(tree.height(), 3);
  const TreeStats stats = tree.GetTreeStats();
  EXPECT_EQ(stats.entry_count, 3000u);
}

TEST(KdbTreeTest, ForcedSplitsCanUnderfillPages) {
  // The structural weakness of Section 2.1: after enough growth, forced
  // splits leave pages below the 40% fill the other trees guarantee.
  KdbTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  KdbTree tree(options);
  const Dataset data = MakeUniformDataset(4000, 4, /*seed=*/43);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const TreeStats stats = tree.GetTreeStats();
  const double avg_fill = static_cast<double>(stats.entry_count) /
                          (static_cast<double>(stats.leaf_count) *
                           static_cast<double>(tree.leaf_capacity()));
  // Fill is real but lower than a 40%-guaranteeing structure could reach.
  EXPECT_GT(avg_fill, 0.05);
  EXPECT_LT(avg_fill, 0.95);
}

TEST(KdbTreeTest, DeleteKeepsPartition) {
  KdbTree::Options options;
  options.dim = 2;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  KdbTree tree(options);
  const Dataset data = MakeUniformDataset(1000, 2, /*seed=*/47);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 500u);
  // Deleted points are really gone; survivors remain.
  EXPECT_TRUE(tree.Delete(data.point(0), 0).IsNotFound());
  EXPECT_TRUE(tree.Delete(data.point(1), 1).ok());
}

TEST(KdbTreeTest, PointQueryDescendsSingleBranch) {
  // Section 2.1: disjointness makes an exact-match search read exactly one
  // page per level.
  KdbTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  KdbTree tree(options);
  const Dataset data = MakeUniformDataset(2000, 4, /*seed=*/53);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const IoStats before = tree.GetIoStats();
  ASSERT_TRUE(tree.Delete(data.point(77), 77).ok());
  // Delete reads one node per level (plus one write per modified page).
  EXPECT_EQ(tree.GetIoStats().reads - before.reads,
            static_cast<uint64_t>(tree.height()));
}

}  // namespace
}  // namespace srtree
