// StructuralAuditor coverage: clean trees of every variant audit clean,
// and deliberately corrupted trees yield the right violation class at the
// right node path. Corruption goes through SRTreeTestAccess, a test-only
// friend that rewrites pages directly.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sr_tree.h"
#include "src/debug/structural_auditor.h"
#include "src/workload/uniform.h"
#include "tests/test_util.h"

namespace srtree {

// Test-only backdoor into the SR-tree's private page machinery (declared a
// friend in sr_tree.h). Reads a node by path, lets the test mutate it, and
// writes it back without refreshing the parent entries — exactly the kind
// of inconsistency the auditor exists to catch.
struct SRTreeTestAccess {
  using Node = SRTree::Node;

  // Each helper takes the tree's writer lock: the page accessors require it
  // (REQUIRES(writer_mu_)), and the corruption below is exactly a writer-
  // side mutation. Staged writes are visible to the auditor, which walks
  // the live pages under the same lock.
  static Node ReadByPath(const SRTree& tree, const std::vector<int>& path) {
    MutexLock lock(tree.writer_mu_);
    Node node = tree.PeekNode(tree.root_id_);
    for (const int i : path) {
      node = tree.PeekNode(node.children[static_cast<size_t>(i)].child);
    }
    return node;
  }

  static void Write(SRTree& tree, const Node& node) {
    MutexLock lock(tree.writer_mu_);
    tree.WriteNode(node);
  }

  static int RootLevel(const SRTree& tree) {
    MutexLock lock(tree.writer_mu_);
    return tree.root_level_;
  }
};

namespace {

using debug::FormatViolation;
using debug::StructuralAuditor;
using debug::Violation;
using debug::ViolationKind;
using testing::MakeSmallPageIndex;
using testing::TypeToken;

constexpr int kDim = 4;

std::unique_ptr<SRTree> BuildSmallPageSRTree(size_t n) {
  SRTree::Options options;
  options.dim = kDim;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  auto tree = std::make_unique<SRTree>(options);
  const Dataset data = MakeUniformDataset(n, kDim, /*seed=*/29);
  const Status status = tree->BulkLoad(data.ToPoints(), data.SequentialOids());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return tree;
}

bool HasViolationAt(const std::vector<Violation>& violations,
                    ViolationKind kind, const std::string& path) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return v.kind == kind && v.node_path == path;
                     });
}

std::string Describe(const std::vector<Violation>& violations) {
  std::string s;
  for (const Violation& v : violations) s += FormatViolation(v) + "\n";
  return s.empty() ? "<no violations>" : s;
}

// --- clean trees audit clean, across every index variant ---

class CleanAuditTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(CleanAuditTest, BulkLoadedTreeHasNoViolations) {
  auto index = MakeSmallPageIndex(GetParam(), kDim);
  const Dataset data = MakeUniformDataset(800, kDim, /*seed=*/31);
  ASSERT_TRUE(index->BulkLoad(data.ToPoints(), data.SequentialOids()).ok());

  const std::vector<Violation> violations =
      StructuralAuditor().Audit(*index);
  EXPECT_TRUE(violations.empty()) << Describe(violations);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

TEST_P(CleanAuditTest, StaysCleanThroughDeletions) {
  auto index = MakeSmallPageIndex(GetParam(), kDim);
  const Dataset data = MakeUniformDataset(600, kDim, /*seed=*/37);
  ASSERT_TRUE(index->BulkLoad(data.ToPoints(), data.SequentialOids()).ok());

  const std::vector<Point> points = data.ToPoints();
  const Status probe = index->Delete(points[0], 0);
  if (probe.IsUnimplemented()) GTEST_SKIP() << "static structure";
  ASSERT_TRUE(probe.ok()) << probe.ToString();
  for (uint32_t oid = 1; oid < 300; ++oid) {
    ASSERT_TRUE(index->Delete(points[oid], oid).ok());
  }

  const std::vector<Violation> violations =
      StructuralAuditor().Audit(*index);
  EXPECT_TRUE(violations.empty()) << Describe(violations);
}

INSTANTIATE_TEST_SUITE_P(
    AllTrees, CleanAuditTest,
    ::testing::Values(IndexType::kSRTree, IndexType::kSSTree,
                      IndexType::kRStarTree, IndexType::kKdbTree,
                      IndexType::kVamSplitRTree, IndexType::kXTree,
                      IndexType::kTvTree, IndexType::kScan),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return TypeToken(info.param);
    });

// --- corrupted trees are detected, with the offending node located ---

TEST(CorruptedAuditTest, ShrunkSphereIsLocated) {
  auto tree = BuildSmallPageSRTree(800);
  auto root = SRTreeTestAccess::ReadByPath(*tree, {});
  ASSERT_FALSE(root.is_leaf());
  root.children[0].sphere.set_radius(root.children[0].sphere.radius() * 0.05);
  SRTreeTestAccess::Write(*tree, root);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kSphereContainment,
                             "root/0"))
      << Describe(violations);
  EXPECT_FALSE(tree->CheckInvariants().ok());
}

TEST(CorruptedAuditTest, ChildRectWidenedPastParentIsLocated) {
  auto tree = BuildSmallPageSRTree(3000);
  ASSERT_GE(SRTreeTestAccess::RootLevel(*tree), 2)
      << "need height >= 3 so an inner node has a claimed rect";
  auto inner = SRTreeTestAccess::ReadByPath(*tree, {0});
  ASSERT_FALSE(inner.is_leaf());
  // Push one child's rectangle far outside anything its parent claims.
  Point lo = inner.children[0].rect.lo();
  Point hi = inner.children[0].rect.hi();
  hi[0] += 100.0;
  inner.children[0].rect = Rect(std::move(lo), std::move(hi));
  SRTreeTestAccess::Write(*tree, inner);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kRectContainment,
                             "root/0/0"))
      << Describe(violations);
  // The widened entry also breaks its node's own MBR exactness.
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kRectNotTightMbr,
                             "root/0/0"))
      << Describe(violations);
}

TEST(CorruptedAuditTest, UnbalancedLeafDepthIsLocated) {
  auto tree = BuildSmallPageSRTree(3000);
  ASSERT_GE(SRTreeTestAccess::RootLevel(*tree), 2)
      << "need height >= 3 to splice a grandchild under the root";
  auto root = SRTreeTestAccess::ReadByPath(*tree, {});
  const auto grandchild = SRTreeTestAccess::ReadByPath(*tree, {0, 0});
  // Point the root's first entry one level too deep: the subtree under
  // root/0 now bottoms out a level early.
  root.children[0].child = grandchild.id;
  SRTreeTestAccess::Write(*tree, root);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kUnevenLeafDepth,
                             "root/0"))
      << Describe(violations);
}

TEST(CorruptedAuditTest, WeightMismatchIsLocated) {
  auto tree = BuildSmallPageSRTree(800);
  auto root = SRTreeTestAccess::ReadByPath(*tree, {});
  ASSERT_FALSE(root.is_leaf());
  root.children[1].weight += 7;
  SRTreeTestAccess::Write(*tree, root);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(
      HasViolationAt(violations, ViolationKind::kWeightMismatch, "root/1"))
      << Describe(violations);
}

TEST(CorruptedAuditTest, UnderfullLeafAndCountMismatchAreLocated) {
  auto tree = BuildSmallPageSRTree(800);
  ASSERT_GE(SRTreeTestAccess::RootLevel(*tree), 1);
  // Walk down the 0-spine to a leaf and empty it almost completely.
  std::vector<int> path;
  auto node = SRTreeTestAccess::ReadByPath(*tree, path);
  while (!node.is_leaf()) {
    path.push_back(0);
    node = SRTreeTestAccess::ReadByPath(*tree, path);
  }
  ASSERT_GT(node.points.size(), 1u);
  node.points.resize(1);
  SRTreeTestAccess::Write(*tree, node);

  std::string leaf_path = "root";
  for (const int i : path) leaf_path += "/" + std::to_string(i);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(
      HasViolationAt(violations, ViolationKind::kUnderfullNode, leaf_path))
      << Describe(violations);
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kEntryCountMismatch,
                             "root"))
      << Describe(violations);
  // CheckInvariants surfaces the first violation with its path.
  const Status status = tree->CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("root/"), std::string::npos)
      << status.ToString();
}

TEST(CorruptedAuditTest, SphereInflatedPastRectBoundIsLocated) {
  auto tree = BuildSmallPageSRTree(800);
  auto root = SRTreeTestAccess::ReadByPath(*tree, {});
  ASSERT_FALSE(root.is_leaf());
  // A huge radius still contains every point, but violates the Section 4.2
  // min(d_s, d_r) rule the SR-tree's MINDIST bound depends on.
  root.children[0].sphere.set_radius(1e6);
  SRTreeTestAccess::Write(*tree, root);

  const std::vector<Violation> violations = StructuralAuditor().Audit(*tree);
  EXPECT_TRUE(HasViolationAt(violations, ViolationKind::kSphereExceedsRect,
                             "root/0"))
      << Describe(violations);
}

}  // namespace
}  // namespace srtree
