#include "src/rstar/rstar_tree.h"

#include <gtest/gtest.h>

#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(RStarTreeTest, PaperFanouts) {
  // Section 3.1 setup: 16 dimensions, 8192-byte pages, 512-byte leaf data
  // areas, 8-byte coordinates.
  RStarTree::Options options;
  options.dim = 16;
  RStarTree tree(options);
  EXPECT_EQ(tree.node_capacity(), 31u);  // (8192-8) / (2*16*8 + 4)
  EXPECT_EQ(tree.leaf_capacity(), 12u);  // (8192-8) / (16*8 + 4 + 512)
  EXPECT_EQ(tree.name(), "R*-tree");
}

TEST(RStarTreeTest, FanoutShrinksWithDimensionality) {
  size_t prev = 1u << 20;
  for (const int dim : {10, 20, 40, 80}) {
    RStarTree::Options options;
    options.dim = dim;
    RStarTree tree(options);
    EXPECT_LT(tree.node_capacity(), prev);
    prev = tree.node_capacity();
  }
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  RStarTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  RStarTree tree(options);
  EXPECT_EQ(tree.height(), 1);

  const Dataset data = MakeUniformDataset(2000, 4, /*seed=*/3);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 6);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, QueryReadsAtLeastRootToLeafPath) {
  RStarTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  RStarTree tree(options);
  const Dataset data = MakeUniformDataset(1000, 4, /*seed=*/5);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const QueryResult result = tree.Search(data.point(0), QuerySpec::Knn(1));
  EXPECT_GE(result.io.reads, static_cast<uint64_t>(tree.height()));
  EXPECT_GE(result.io.leaf_reads, 1u);
}

TEST(RStarTreeTest, InsertionCountsDiskAccesses) {
  RStarTree::Options options;
  options.dim = 4;
  RStarTree tree(options);
  const IoStats before = tree.GetIoStats();
  ASSERT_TRUE(tree.Insert(Point(4, 0.5), 0).ok());
  // At least read + write of the root.
  EXPECT_GE(tree.GetIoStats().accesses() - before.accesses(), 2u);
}

TEST(RStarTreeTest, LeafRegionsAreRectsOnly) {
  RStarTree::Options options;
  options.dim = 2;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  RStarTree tree(options);
  const Dataset data = MakeUniformDataset(500, 2, /*seed=*/7);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const RegionSummary summary = tree.LeafRegionSummary();
  EXPECT_GT(summary.leaf_count, 1u);
  EXPECT_TRUE(summary.has_rects);
  EXPECT_FALSE(summary.has_spheres);
  EXPECT_GT(summary.avg_rect_volume, 0.0);
}

TEST(RStarTreeTest, RejectsWrongDimensionality) {
  RStarTree::Options options;
  options.dim = 3;
  RStarTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{1.0, 2.0}, 0).IsInvalidArgument());
  EXPECT_TRUE(tree.Delete(Point{1.0, 2.0}, 0).IsInvalidArgument());
}

}  // namespace
}  // namespace srtree
