#include "src/sstree/ss_tree.h"

#include <gtest/gtest.h>

#include "src/workload/uniform.h"

namespace srtree {
namespace {

TEST(SSTreeTest, PaperFanouts) {
  SSTree::Options options;
  options.dim = 16;
  SSTree tree(options);
  // A sphere entry (center + radius + weight + child) is nearly half the
  // rectangle entry, which is the SS-tree's "almost double fanout" claim.
  EXPECT_EQ(tree.node_capacity(), 56u);  // (8192-8) / (16*8 + 8 + 4 + 4)
  EXPECT_EQ(tree.leaf_capacity(), 12u);
  EXPECT_EQ(tree.name(), "SS-tree");
}

TEST(SSTreeTest, LeafSummaryReportsBothShapes) {
  // Figure 6's measurement needs the bounding rectangles of SS-tree leaves
  // even though the tree itself stores only spheres.
  SSTree::Options options;
  options.dim = 8;
  options.page_size = 2048;
  options.leaf_data_size = 0;
  SSTree tree(options);
  const Dataset data = MakeUniformDataset(800, 8, /*seed=*/11);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  const RegionSummary summary = tree.LeafRegionSummary();
  EXPECT_TRUE(summary.has_spheres);
  EXPECT_TRUE(summary.has_rects);
  // The paper's core observation: leaf bounding rectangles occupy far less
  // volume than the bounding spheres of the same leaves...
  EXPECT_LT(summary.avg_rect_volume, summary.avg_sphere_volume);
  // ...while the spheres have the shorter diameter.
  EXPECT_LT(summary.avg_sphere_diameter, summary.avg_rect_diagonal);
}

TEST(SSTreeTest, HeightIsShallowerThanRStarStyleFanoutWouldGive) {
  // With node fanout 56 vs 31, the SS-tree needs no more levels than the
  // same data in an R*-tree; sanity-check it builds and balances.
  SSTree::Options options;
  options.dim = 4;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  SSTree tree(options);
  const Dataset data = MakeUniformDataset(2000, 4, /*seed=*/13);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GE(tree.height(), 2);
  const TreeStats stats = tree.GetTreeStats();
  EXPECT_EQ(stats.entry_count, 2000u);
  EXPECT_GT(stats.leaf_count, 10u);
}

TEST(SSTreeTest, CentroidWeightsTrackSubtreeSizes) {
  SSTree::Options options;
  options.dim = 2;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  SSTree tree(options);
  const Dataset data = MakeUniformDataset(600, 2, /*seed=*/17);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data.point(i), static_cast<uint32_t>(i)).ok());
  }
  // CheckInvariants validates weight sums at every entry.
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(SSTreeTest, RejectsWrongDimensionality) {
  SSTree::Options options;
  options.dim = 3;
  SSTree tree(options);
  EXPECT_TRUE(tree.Insert(Point{1.0}, 0).IsInvalidArgument());
}

}  // namespace
}  // namespace srtree
