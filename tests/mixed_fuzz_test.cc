// Mixed reader+writer fuzz: one writer thread commits a deterministic
// Insert/Delete schedule while reader threads pin snapshots and cross-check
// every pinned version against a brute-force oracle replaying exactly that
// committed prefix (see debug::RunMixedReadWriteFuzz). This is the
// end-to-end differential test of the copy-on-write commit protocol and
// epoch-based reclamation: the CI thread-sanitizer job runs it with
// -fsanitize=thread to surface writer/reader races, and the ASan/LSan job
// verifies that no retired page outlives reclamation.

#include <gtest/gtest.h>

#include "src/benchlib/experiment.h"
#include "src/core/sr_tree.h"
#include "src/debug/fuzzer.h"
#include "src/statictier/tiered_index.h"
#include "src/storage/epoch.h"

namespace srtree {
namespace {

SRTree::Options SmallTreeOptions() {
  SRTree::Options options;
  options.dim = 6;
  options.page_size = 1024;
  options.leaf_data_size = 0;
  return options;
}

TEST(MixedFuzzTest, ReadersMatchOracleWhileWriterCommits) {
  SRTree tree(SmallTreeOptions());

  debug::MixedFuzzOptions options;
  options.seed = 20260808;
  options.initial_points = 1200;
  options.num_mutations = 1200;
  options.num_reader_threads = 4;
  const Status status = debug::RunMixedReadWriteFuzz(tree, options);
  EXPECT_TRUE(status.ok()) << status.ToString();

  // Quiesced epilogue: with every reader joined, one reclamation pass must
  // free every retired page version — anything left is a leak in the
  // epoch-based reclamation protocol (and would show up in LSan too).
  EXPECT_EQ(tree.epochs_for_test().active_readers(), 0u);
  tree.epochs_for_test().ReclaimExpired();
  EXPECT_EQ(tree.epochs_for_test().retired_count(), 0u);
}

// The pooled read path under the same schedule: snapshot-stamped frames in
// the sharded BufferPool must serve each pinned version's bytes even while
// the writer commits fresh page versions.
TEST(MixedFuzzTest, BufferPooledReadersMatchOracleWhileWriterCommits) {
  SRTree tree(SmallTreeOptions());

  debug::MixedFuzzOptions options;
  options.seed = 20260809;
  options.initial_points = 1000;
  options.num_mutations = 1000;
  options.num_reader_threads = 4;
  options.buffer_pool_pages = 64;
  const Status status = debug::RunMixedReadWriteFuzz(tree, options);
  EXPECT_TRUE(status.ok()) << status.ToString();

  tree.epochs_for_test().ReclaimExpired();
  EXPECT_EQ(tree.epochs_for_test().retired_count(), 0u);
}

// The tiered index under the same schedule, with the writer additionally
// calling Compact() every 150 committed mutations while readers hold live
// snapshots. Compact() swaps the whole static tier out from under them; the
// version → committed-prefix mapping (and the final version == v0 +
// num_mutations check inside the harness) verifies that a compaction is
// representation-only: no version bump, no observable content change.
TEST(MixedFuzzTest, TieredReadersSurviveCompactionUnderneath) {
  TieredIndex::Options options;
  options.dim = 6;
  options.page_size = 1024;
  TieredIndex index(options);

  debug::MixedFuzzOptions fuzz;
  fuzz.seed = 20260810;
  fuzz.initial_points = 1000;
  fuzz.num_mutations = 900;
  fuzz.num_reader_threads = 4;
  fuzz.compact_every = 150;
  const Status status = debug::RunMixedReadWriteFuzz(index, fuzz);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Every compaction drains the delta; the trailing mutations after the
  // last Compact() are all that may remain in it.
  EXPECT_LE(index.delta_size_for_test(), 150u);
}

// The frozen-tree structures advertise no snapshot isolation (version 0);
// the mixed fuzzer must refuse them rather than report vacuous success.
TEST(MixedFuzzTest, RejectsIndexesWithoutSnapshotIsolation) {
  IndexConfig config;
  config.dim = 6;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(IndexType::kSSTree, config);

  debug::MixedFuzzOptions options;
  options.initial_points = 50;
  options.num_mutations = 10;
  const Status status = debug::RunMixedReadWriteFuzz(*index, options);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

}  // namespace
}  // namespace srtree
