#include "src/index/knn.h"

#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/index_factory.h"

namespace srtree {
namespace {

TEST(KnnCandidatesTest, InfinitePruneDistanceUntilFull) {
  KnnCandidates cand(3);
  EXPECT_EQ(cand.PruneDistance(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(cand.PruneDistanceSquared(),
            std::numeric_limits<double>::infinity());
  cand.OfferSquared(1.0, 1);
  cand.OfferSquared(4.0, 2);
  EXPECT_FALSE(cand.full());
  EXPECT_EQ(cand.PruneDistance(), std::numeric_limits<double>::infinity());
  cand.OfferSquared(9.0, 3);
  EXPECT_TRUE(cand.full());
  EXPECT_DOUBLE_EQ(cand.PruneDistanceSquared(), 9.0);
  EXPECT_DOUBLE_EQ(cand.PruneDistance(), 3.0);
}

TEST(KnnCandidatesTest, KeepsKBest) {
  KnnCandidates cand(2);
  cand.OfferSquared(25.0, 1);
  cand.OfferSquared(1.0, 2);
  cand.OfferSquared(9.0, 3);
  cand.OfferSquared(0.25, 4);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 4u);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.5);
  EXPECT_EQ(result[1].oid, 2u);
  EXPECT_DOUBLE_EQ(result[1].distance, 1.0);
}

TEST(KnnCandidatesTest, WorseCandidatesRejected) {
  KnnCandidates cand(1);
  cand.OfferSquared(1.0, 1);
  cand.OfferSquared(4.0, 2);
  EXPECT_DOUBLE_EQ(cand.PruneDistance(), 1.0);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 1u);
}

TEST(KnnCandidatesTest, TiesBrokenBySmallerOid) {
  KnnCandidates cand(2);
  cand.OfferSquared(1.0, 9);
  cand.OfferSquared(1.0, 3);
  cand.OfferSquared(1.0, 5);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 3u);
  EXPECT_EQ(result[1].oid, 5u);
}

TEST(NeighborOrderTest, CanonicalOrderingByDistanceThenOid) {
  const Neighbor near{1.0, 9};
  const Neighbor far{2.0, 1};
  const Neighbor near_twin{1.0, 12};
  EXPECT_TRUE(near < far);
  EXPECT_TRUE(near < near_twin);
  EXPECT_FALSE(near_twin < near);
  EXPECT_FALSE(near < near);
}

// Regression for duplicate distances: four points equidistant from the
// query must come back in ascending oid order from every index structure,
// regardless of insertion order. Before Neighbor::operator< each tree
// carried its own tie-break.
TEST(NeighborOrderTest, DuplicateDistancesOrderedByOidInEveryIndex) {
  const Point query{0.5, 0.5};
  const double d = 0.125;
  // Insertion order deliberately scrambled relative to oid order.
  const std::vector<Point> points = {{0.5, 0.5 + d},
                                     {0.5 - d, 0.5},
                                     {0.5, 0.5 - d},
                                     {0.5 + d, 0.5}};
  const std::vector<uint32_t> oids = {7, 3, 9, 1};

  IndexConfig config;
  config.dim = 2;
  config.page_size = 512;
  config.leaf_data_size = 0;
  std::vector<IndexType> types = AllTreeTypes();
  types.push_back(IndexType::kXTree);
  types.push_back(IndexType::kTvTree);
  types.push_back(IndexType::kScan);
  for (const IndexType type : types) {
    std::unique_ptr<PointIndex> index = MakeIndex(type, config);
    ASSERT_TRUE(index->BulkLoad(points, oids).ok()) << IndexTypeName(type);
    for (const QuerySpec& spec :
         {QuerySpec::Knn(4), QuerySpec::KnnBestFirst(4),
          QuerySpec::Range(d + 0.01)}) {
      const QueryResult result = index->Search(query, spec);
      ASSERT_TRUE(result.status.ok()) << IndexTypeName(type);
      ASSERT_EQ(result.neighbors.size(), 4u) << IndexTypeName(type);
      const std::vector<uint32_t> want = {1, 3, 7, 9};
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(result.neighbors[i].oid, want[i])
            << IndexTypeName(type) << " result " << i;
        EXPECT_DOUBLE_EQ(result.neighbors[i].distance, d)
            << IndexTypeName(type);
      }
    }
  }
}

TEST(KnnCandidatesTest, SortedOutputStableUnderInsertionOrder) {
  KnnCandidates a(4), b(4);
  const double ds[] = {16.0, 1.0, 9.0, 4.0, 25.0};
  for (int i = 0; i < 5; ++i) a.OfferSquared(ds[i], static_cast<uint32_t>(i));
  for (int i = 4; i >= 0; --i) b.OfferSquared(ds[i], static_cast<uint32_t>(i));
  EXPECT_EQ(a.TakeSorted(), b.TakeSorted());
}

}  // namespace
}  // namespace srtree
