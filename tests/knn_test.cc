#include "src/index/knn.h"

#include <limits>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(KnnCandidatesTest, InfinitePruneDistanceUntilFull) {
  KnnCandidates cand(3);
  EXPECT_EQ(cand.PruneDistance(), std::numeric_limits<double>::infinity());
  cand.Offer(1.0, 1);
  cand.Offer(2.0, 2);
  EXPECT_FALSE(cand.full());
  EXPECT_EQ(cand.PruneDistance(), std::numeric_limits<double>::infinity());
  cand.Offer(3.0, 3);
  EXPECT_TRUE(cand.full());
  EXPECT_DOUBLE_EQ(cand.PruneDistance(), 3.0);
}

TEST(KnnCandidatesTest, KeepsKBest) {
  KnnCandidates cand(2);
  cand.Offer(5.0, 1);
  cand.Offer(1.0, 2);
  cand.Offer(3.0, 3);
  cand.Offer(0.5, 4);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 4u);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.5);
  EXPECT_EQ(result[1].oid, 2u);
  EXPECT_DOUBLE_EQ(result[1].distance, 1.0);
}

TEST(KnnCandidatesTest, WorseCandidatesRejected) {
  KnnCandidates cand(1);
  cand.Offer(1.0, 1);
  cand.Offer(2.0, 2);
  EXPECT_DOUBLE_EQ(cand.PruneDistance(), 1.0);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].oid, 1u);
}

TEST(KnnCandidatesTest, TiesBrokenBySmallerOid) {
  KnnCandidates cand(2);
  cand.Offer(1.0, 9);
  cand.Offer(1.0, 3);
  cand.Offer(1.0, 5);
  const std::vector<Neighbor> result = cand.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].oid, 3u);
  EXPECT_EQ(result[1].oid, 5u);
}

TEST(KnnCandidatesTest, SortedOutputStableUnderInsertionOrder) {
  KnnCandidates a(4), b(4);
  const double ds[] = {4.0, 1.0, 3.0, 2.0, 5.0};
  for (int i = 0; i < 5; ++i) a.Offer(ds[i], static_cast<uint32_t>(i));
  for (int i = 4; i >= 0; --i) b.Offer(ds[i], static_cast<uint32_t>(i));
  EXPECT_EQ(a.TakeSorted(), b.TakeSorted());
}

}  // namespace
}  // namespace srtree
