#include "src/common/status.h"

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

Status FailsThenPropagates(bool fail) {
  RETURN_IF_ERROR(fail ? Status::Corruption("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(true).IsCorruption());
  EXPECT_TRUE(FailsThenPropagates(false).IsNotFound());
}

}  // namespace
}  // namespace srtree
