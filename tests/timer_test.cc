#include "src/common/timer.h"

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(WallTimerTest, Monotonic) {
  WallTimer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(CpuTimerTest, MeasuresWork) {
  CpuTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i * 0.5;
  (void)sink;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedMillis());  // same clock, sampled twice
}

TEST(CpuTimerTest, ResetRestarts) {
  CpuTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before);
}

}  // namespace
}  // namespace srtree
