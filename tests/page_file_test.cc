#include "src/storage/page_file.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace srtree {
namespace {

TEST(PageFileTest, AllocateReadWrite) {
  PageFile file(256);
  const PageId id = file.Allocate();
  std::vector<char> data(256, 'a');
  file.Write(id, data.data());

  std::vector<char> out(256);
  file.Read(id, out.data());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 256), 0);
  EXPECT_EQ(file.stats().reads, 1u);
  EXPECT_EQ(file.stats().writes, 1u);
}

TEST(PageFileTest, AllocationZeroesPages) {
  PageFile file(64);
  const PageId id = file.Allocate();
  std::vector<char> out(64, 'z');
  file.Read(id, out.data());
  for (const char c : out) EXPECT_EQ(c, 0);
}

TEST(PageFileTest, FreeRecyclesIds) {
  PageFile file(64);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(file.live_pages(), 2u);
  file.Free(a);
  EXPECT_EQ(file.live_pages(), 1u);
  const PageId c = file.Allocate();
  EXPECT_EQ(c, a);  // recycled
  // Recycled pages come back zeroed.
  std::vector<char> out(64, 'z');
  file.Read(c, out.data());
  for (const char ch : out) EXPECT_EQ(ch, 0);
}

TEST(PageFileTest, PerLevelReadAccounting) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> buf(64);
  file.Read(a, buf.data(), /*level=*/0);
  file.Read(a, buf.data(), /*level=*/0);
  file.Read(a, buf.data(), /*level=*/2);
  file.Read(a, buf.data(), /*level=*/-1);  // unknown level
  const IoStats& stats = file.stats();
  EXPECT_EQ(stats.reads, 4u);
  EXPECT_EQ(stats.leaf_reads(), 2u);
  EXPECT_EQ(stats.nonleaf_reads(), 1u);
  ASSERT_EQ(stats.reads_by_level.size(), 3u);
  EXPECT_EQ(stats.reads_by_level[1], 0u);
}

TEST(PageFileTest, StatsReset) {
  PageFile file(64);
  const PageId a = file.Allocate();
  std::vector<char> buf(64);
  file.Read(a, buf.data(), 0);
  file.Write(a, buf.data());
  file.stats().Reset();
  EXPECT_EQ(file.stats().reads, 0u);
  EXPECT_EQ(file.stats().writes, 0u);
  EXPECT_EQ(file.stats().leaf_reads(), 0u);
  EXPECT_EQ(file.stats().accesses(), 0u);
}

TEST(PageFileTest, PeekDoesNotCount) {
  PageFile file(64);
  const PageId a = file.Allocate();
  (void)file.PeekPage(a);
  EXPECT_EQ(file.stats().reads, 0u);
}

TEST(PageFileDeathTest, UseAfterFreeAborts) {
  PageFile file(64);
  const PageId a = file.Allocate();
  file.Free(a);
  std::vector<char> buf(64);
  EXPECT_DEATH(file.Read(a, buf.data()), "CHECK failed");
  EXPECT_DEATH(file.Free(a), "CHECK failed");
}

}  // namespace
}  // namespace srtree
