// Concurrent read-path fuzz: N reader threads issue mixed kNN / best-first /
// range batches through Search() against a quiescent tree (no writer runs
// here — the mixed reader+writer schedules live in mixed_fuzz_test.cc),
// cross-checked against the brute-force oracle, with the accounting-parity
// invariant verified at the end (see debug::RunConcurrentQueryFuzz). The CI
// thread-sanitizer job builds this file with -fsanitize=thread to surface
// read-path races; sizes are kept modest so the TSan run stays fast.

#include <gtest/gtest.h>

#include "src/benchlib/experiment.h"
#include "src/debug/fuzzer.h"

namespace srtree {
namespace {

class ConcurrentFuzzTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(ConcurrentFuzzTest, ParallelReadersMatchOracle) {
  IndexConfig config;
  config.dim = 6;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(GetParam(), config);

  debug::ConcurrentFuzzOptions options;
  options.seed = 20260806;
  options.num_points = 1200;
  options.num_threads = 4;
  options.queries_per_thread = 36;
  const Status status = debug::RunConcurrentQueryFuzz(*index, options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, ConcurrentFuzzTest,
    ::testing::Values(IndexType::kSRTree, IndexType::kSSTree,
                      IndexType::kRStarTree, IndexType::kKdbTree,
                      IndexType::kVamSplitRTree, IndexType::kXTree,
                      IndexType::kTvTree, IndexType::kScan),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      std::string name = IndexTypeName(info.param);
      for (char& c : name) {
        if (c == '-' || c == '*' || c == ' ') c = '_';
      }
      return name;
    });

// The pooled read path under the same schedule: concurrent Pin/Read against
// the sharded BufferPool, still oracle-exact and parity-clean.
TEST(ConcurrentFuzzBufferPoolTest, SRTreeWithSharedPool) {
  IndexConfig config;
  config.dim = 6;
  config.page_size = 1024;
  config.leaf_data_size = 0;
  auto index = MakeIndex(IndexType::kSRTree, config);

  debug::ConcurrentFuzzOptions options;
  options.seed = 20260807;
  options.num_points = 1200;
  options.num_threads = 4;
  options.queries_per_thread = 36;
  options.buffer_pool_pages = 64;
  const Status status = debug::RunConcurrentQueryFuzz(*index, options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace srtree
